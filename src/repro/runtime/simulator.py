"""Discrete-event simulated multicore executor.

The paper evaluates ATM on a real 8-core Sandy Bridge; in Python the GIL (and
the interpreter's very different cost structure) makes wall-clock parallel
speedups unfaithful.  This executor therefore *simulates* the multicore
execution while still running every task **functionally** (real NumPy data
flows through the real THT/IKT), so correctness figures are genuine and only
time is modelled.

Model
-----
* Every task has a cost in simulated microseconds from its task type's cost
  model (applications calibrate these so that the paper's observed
  copy-vs-execute ratio of ~10x holds).
* The master thread creates tasks at a finite rate
  (``SimulationConfig.creation_throughput``); a task cannot start before its
  creation time.  This reproduces the task-creation bottleneck of Section V-C
  / Figure 8.
* An ATM lookup charges ``hashed_bytes / hash_bandwidth`` plus a fixed THT /
  IKT probe cost; a THT hit charges ``copied_bytes / copy_bandwidth``; a
  commit charges ``stored_bytes / copy_bandwidth``.
* Memory-bound ATM activities (hashing, copies) are slowed down by a
  contention factor proportional to the number of simultaneously busy cores,
  reproducing the shared-memory-bandwidth effect the paper measures in
  Figure 7 (hash/copy states ~60 % slower at 8 cores than at 2).
* Dependences and the IKT behave exactly as in the real runtime: a task whose
  twin is in flight defers, and completes ``copy_cost`` after the producer
  commits.

Events are processed in nondecreasing simulated time, so the ATM engine
observes the same interleaving a real parallel run would produce (keys enter
the IKT when a task starts and move to the THT when it finishes).
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Optional

from repro.common.config import RuntimeConfig, SimulationConfig
from repro.common.exceptions import SimulationError
from repro.runtime.atm_protocol import (
    ATMAction,
    ATMDecision,
    EXECUTE_DECISION,
    MemoizationEngineProtocol,
)
from repro.runtime.executor import BaseExecutor, RunResult
from repro.runtime.graph import TaskDependenceGraph
from repro.runtime.task import Task, TaskState
from repro.runtime.trace import CoreState

__all__ = ["SimulatedExecutor"]

# Event kinds, ordered so simultaneous events resolve deterministically:
# finishes are processed before creations at the same timestamp so freshly
# released consumers see committed THT entries.
_EVT_TASK_FINISH = 0
_EVT_DEFERRED_DONE = 1
_EVT_TASK_CREATED = 2
_EVT_CORE_FREE = 3


class SimulatedExecutor(BaseExecutor):
    """Deterministic discrete-event multicore executor."""

    time_unit = "us"

    def __init__(
        self,
        config: Optional[RuntimeConfig] = None,
        engine: Optional[MemoizationEngineProtocol] = None,
        sim_config: Optional[SimulationConfig] = None,
    ) -> None:
        super().__init__(config=config, engine=engine)
        self.sim = sim_config or SimulationConfig()
        self._released: set[int] = set()
        self._created: set[int] = set()
        self._available: deque[Task] = deque()
        self._clock = 0.0
        self._seq = itertools.count()
        # Number of in-flight memoization (SKIP) activities; these are the
        # memory-bandwidth-bound operations that contend with each other
        # (paper Figure 7: hash/copy states slow down as cores increase).
        self._active_memory_ops = 0
        # Running count of busy simulated cores, maintained by drain()'s
        # free_core/dispatch pair (no per-event scans of a flag list).
        self._busy_cores = 0

    @property
    def busy_core_count(self) -> int:
        """Currently busy simulated cores (running counter, O(1))."""
        return self._busy_cores

    # The simulator manages availability itself (creation throttling), so the
    # graph's ready notification only records the release.
    def notify_ready(self, task: Task) -> None:
        self._released.add(task.task_id)
        if task.task_id in self._created:
            self.scheduler.task_ready(task, worker_hint=task.creation_index)

    def notify_ready_batch(self, tasks) -> None:
        # Readiness is gated per task on the simulated creation event, so a
        # batched release degrades to the per-task path (order preserved).
        for task in tasks:
            self.notify_ready(task)

    # -- cost helpers ----------------------------------------------------------
    def _contention(self) -> float:
        """Slow-down factor for memory-bound ATM activities.

        Proportional to the number of *other* concurrently running
        memoization operations, which share cache and memory bandwidth.
        """
        return 1.0 + self.sim.memory_contention_factor * max(0, self._active_memory_ops)

    def _hash_cost(self, nbytes: int) -> float:
        if nbytes <= 0:
            return 0.0
        return (nbytes / self.sim.hash_bandwidth) * self._contention()

    def _copy_cost(self, nbytes: int) -> float:
        if nbytes <= 0:
            return 0.0
        return (nbytes / self.sim.copy_bandwidth) * self._contention()

    # -- main loop -------------------------------------------------------------
    def drain(self, graph: TaskDependenceGraph) -> RunResult:
        pending = [t for t in graph.tasks() if not t.state.is_terminal and t.task_id not in self._created]
        pending.sort(key=lambda t: t.task_id)
        if not pending and graph.all_finished:
            return self._result

        events: list[tuple[float, int, int, int, object]] = []
        start_clock = self._clock

        def push_event(time: float, kind: int, payload: object) -> None:
            heapq.heappush(events, (time, kind, next(self._seq), 0, payload))

        # Master creates tasks at a bounded rate starting from the current clock.
        creation_interval = 1.0 / self.sim.creation_throughput
        for index, task in enumerate(pending):
            task.creation_time = start_clock + index * creation_interval
            push_event(task.creation_time, _EVT_TASK_CREATED, task)
            self.trace.record(
                0,
                CoreState.TASK_CREATION,
                task.creation_time,
                task.creation_time + creation_interval * 0.5,
                task.label,
            )

        num_cores = self.config.num_threads
        # Idle cores live in a min-heap of core ids; a core is either busy or
        # in the heap, never both.  Popping the heap yields the lowest idle
        # core id, exactly the core the seed's per-event list rebuild picked,
        # so schedules (and therefore every figure) are bit-identical — minus
        # the O(cores) scan per dispatch attempt.
        idle_heap = list(range(num_cores))
        heapq.heapify(idle_heap)
        self._busy_cores = 0
        finish_time_of: dict[int, float] = {}
        waiters: dict[int, list[tuple[Task, ATMDecision]]] = {}
        target_completions = len(pending)
        completions = 0

        if self.engine is not None:
            # Functional copies for deferred tasks happen inside the engine;
            # graph completion is scheduled by the simulator itself.
            self.engine.set_deferred_completion_callback(None)

        def free_core(core: int) -> None:
            heapq.heappush(idle_heap, core)
            self._busy_cores -= 1

        def dispatch(now: float) -> None:
            while idle_heap:
                core = heapq.heappop(idle_heap)
                task = self.scheduler.next_task(core)
                if task is None:
                    heapq.heappush(idle_heap, core)
                    return
                self._busy_cores += 1
                self._start_task(task, core, now, finish_time_of, waiters, push_event)

        while events:
            now, kind, _, _, payload = heapq.heappop(events)
            if now < self._clock - 1e-9:
                raise SimulationError("event time went backwards")
            self._clock = max(self._clock, now)

            if kind == _EVT_TASK_CREATED:
                task = payload  # type: ignore[assignment]
                self._created.add(task.task_id)
                if task.task_id in self._released:
                    self.scheduler.task_ready(task, worker_hint=task.creation_index)
            elif kind == _EVT_TASK_FINISH:
                task, core, decision, executed = payload  # type: ignore[misc]
                if self.engine is not None and decision.atm_handled:
                    commit = self.engine.task_finished(task, decision, executed, worker_id=core)
                    # Forwarded copies to postponed consumers are charged to the
                    # waiters (scheduled below), not to this core.
                    del commit
                if decision.action == ATMAction.SKIP:
                    self._active_memory_ops = max(0, self._active_memory_ops - 1)
                free_core(core)
                final_state = TaskState.FINISHED if executed else TaskState.MEMOIZED
                graph.complete_task(task, final_state)
                completions += 1
                self._account(decision)
                task.finish_time = now
                # Wake consumers waiting on this in-flight producer.
                for waiter, waiter_decision in waiters.pop(task.task_id, []):
                    copy_cost = self._copy_cost(
                        waiter_decision.copied_bytes or waiter.output_bytes
                    )
                    push_event(now + copy_cost, _EVT_DEFERRED_DONE, (waiter, waiter_decision))
                dispatch(now)
            elif kind == _EVT_DEFERRED_DONE:
                waiter, waiter_decision = payload  # type: ignore[misc]
                graph.complete_task(waiter, TaskState.MEMOIZED)
                completions += 1
                self._account(waiter_decision)
                waiter.finish_time = now
                dispatch(now)
            elif kind == _EVT_CORE_FREE:
                core = payload  # type: ignore[assignment]
                free_core(core)
                dispatch(now)
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown event kind {kind}")

            dispatch(self._clock)
            self.trace.sample_ready(self._clock, self.scheduler.pending())

        if completions != target_completions:
            raise SimulationError(
                f"simulation ended with {completions}/{target_completions} tasks "
                "completed (dependence cycle or lost event)"
            )
        elapsed = self._clock - start_clock
        self._result.elapsed += elapsed
        self._finalize_result()
        return self._result

    # -- per-task processing ----------------------------------------------------
    def _start_task(
        self,
        task: Task,
        core: int,
        now: float,
        finish_time_of: dict[int, float],
        waiters: dict[int, list[tuple[Task, ATMDecision]]],
        push_event,
    ) -> None:
        decision = self._lookup(task, core)
        task.start_time = now
        task.executed_on = core
        overhead = self.sim.task_overhead
        hash_cost = self._hash_cost(decision.hashed_bytes)
        lookup_cost = 0.0
        if decision.atm_handled:
            lookup_cost += self.sim.tht_lookup_overhead
            if decision.action in (ATMAction.DEFER,):
                lookup_cost += self.sim.ikt_lookup_overhead

        if decision.action == ATMAction.SKIP:
            self._active_memory_ops += 1
            copy_cost = self._copy_cost(decision.copied_bytes)
            busy_until = now + overhead + hash_cost + lookup_cost + copy_cost
            if hash_cost > 0:
                self.trace.record(core, CoreState.ATM_HASH, now + overhead, now + overhead + hash_cost, task.label)
            self.trace.record(
                core,
                CoreState.ATM_MEMOIZATION,
                now + overhead + hash_cost,
                busy_until,
                task.label,
            )
            finish_time_of[task.task_id] = busy_until
            push_event(busy_until, _EVT_TASK_FINISH, (task, core, decision, False))
        elif decision.action == ATMAction.DEFER:
            producer = decision.waiting_on
            if producer is None:
                raise SimulationError(f"DEFER decision for {task.label} without a producer")
            busy_until = now + overhead + hash_cost + lookup_cost
            if hash_cost > 0:
                self.trace.record(core, CoreState.ATM_HASH, now + overhead, busy_until, task.label)
            waiters.setdefault(producer.task_id, []).append((task, decision))
            task.state = TaskState.WAITING_INFLIGHT
            push_event(busy_until, _EVT_CORE_FREE, core)
        else:
            # EXECUTE or EXECUTE_AND_TRAIN: run the task functionally now.
            task.state = TaskState.RUNNING
            task.run()
            exec_cost = task.simulated_cost()
            commit_cost = 0.0
            if decision.atm_handled:
                commit_cost = self._copy_cost(task.output_bytes)
            busy_until = now + overhead + hash_cost + lookup_cost + exec_cost + commit_cost
            if hash_cost > 0:
                self.trace.record(core, CoreState.ATM_HASH, now + overhead, now + overhead + hash_cost, task.label)
            self.trace.record(
                core,
                CoreState.TASK_EXECUTION,
                now + overhead + hash_cost,
                now + overhead + hash_cost + exec_cost,
                task.label,
            )
            if commit_cost > 0:
                self.trace.record(
                    core,
                    CoreState.ATM_MEMOIZATION,
                    now + overhead + hash_cost + exec_cost,
                    busy_until,
                    task.label,
                )
            finish_time_of[task.task_id] = busy_until
            push_event(busy_until, _EVT_TASK_FINISH, (task, core, decision, True))
