"""Seed dependence tracker, preserved verbatim as the equivalence oracle.

This is the linear-scan tracker the repository seeded with, kept (like
``repro.atm.keygen_reference``) so the optimised indexed tracker in
:mod:`repro.runtime.dependences` can be *proven* to produce identical edge
sets on randomized access streams
(``tests/runtime/test_dependences_property.py``).  Do not optimise this
module; it is the specification.

The dependence tracker receives tasks in program (creation) order and derives
the edges of the task dependence graph from their declared accesses, with the
usual dataflow semantics:

* read-after-write (true dependence): a reader depends on the last writer of
  any overlapping region;
* write-after-write (output dependence): a writer depends on the previous
  writer of any overlapping region;
* write-after-read (anti dependence): a writer depends on all readers since
  the previous writer of any overlapping region.

Regions conflict when they belong to the same base buffer and their byte
intervals overlap, so disjoint blocks of a matrix can be processed in
parallel while any two accesses to the same block are ordered.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable

from repro.runtime.data import DataAccess, DataRegion
from repro.runtime.task import Task

__all__ = ["DependenceTracker", "RegionState"]


@dataclass
class RegionState:
    """Last writer and subsequent readers of one byte interval."""

    interval: tuple[int, int]
    last_writer: Task | None = None
    readers_since_write: list[Task] = field(default_factory=list)


class DependenceTracker:
    """Incremental dependence analysis over a stream of tasks.

    The tracker keeps, per base buffer, the list of region states (byte
    intervals with their last writer and readers).  For the block-structured
    applications in this reproduction the number of distinct intervals per
    buffer is small (one per block), so the linear overlap scan per access is
    cheap; a fully general implementation would use an interval tree, which
    the module is structured to allow swapping in.
    """

    def __init__(self) -> None:
        self._states: dict[int, list[RegionState]] = defaultdict(list)
        self._edges_added = 0

    @property
    def edges_added(self) -> int:
        """Total number of dependence edges produced so far."""
        return self._edges_added

    # -- core API -------------------------------------------------------------
    def dependences_for(self, task: Task) -> set[Task]:
        """Compute predecessors of ``task`` and update the tracking state.

        Must be called exactly once per task, in creation order.
        """
        predecessors: set[Task] = set()
        for access in task.accesses:
            predecessors.update(self._dependences_for_access(task, access))
        # Second pass: update state *after* computing all dependences so that
        # a task with an inout access does not depend on itself.
        for access in task.accesses:
            self._update_state(task, access)
        predecessors.discard(task)
        self._edges_added += len(predecessors)
        return predecessors

    # -- helpers --------------------------------------------------------------
    def _overlapping_states(self, region: DataRegion) -> Iterable[RegionState]:
        start, end = region.byte_interval
        for state in self._states.get(region.base_id, ()):  # pragma: no branch
            s, e = state.interval
            if start < e and s < end:
                yield state

    def _dependences_for_access(self, task: Task, access: DataAccess) -> set[Task]:
        deps: set[Task] = set()
        for state in self._overlapping_states(access.region):
            if access.reads:
                if state.last_writer is not None:
                    deps.add(state.last_writer)
            if access.writes:
                if state.last_writer is not None:
                    deps.add(state.last_writer)
                deps.update(state.readers_since_write)
        return deps

    def _update_state(self, task: Task, access: DataAccess) -> None:
        region = access.region
        states = self._states[region.base_id]
        match = None
        for state in states:
            if state.interval == region.byte_interval:
                match = state
                break
        if match is None:
            match = RegionState(interval=region.byte_interval)
            states.append(match)
        if access.writes:
            match.last_writer = task
            match.readers_since_write = []
            # A write also orders against overlapping (but non-identical)
            # intervals: record the writer there too so later readers of the
            # overlapping interval see it.
            for state in states:
                if state is match:
                    continue
                s, e = state.interval
                rs, re = region.byte_interval
                if rs < e and s < re:
                    state.last_writer = task
                    state.readers_since_write = []
        elif access.reads:
            if task not in match.readers_since_write:
                match.readers_since_write.append(task)

    def reset(self) -> None:
        """Forget all state (used between independent program runs)."""
        self._states.clear()
        self._edges_added = 0
