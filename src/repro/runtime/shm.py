"""Cross-process shared-memory protocol for :class:`DataRegion` payloads.

The process execution backend (:mod:`repro.runtime.mp_executor`) keeps the
task dependence graph in the parent and runs task bodies in worker
processes.  Application arrays therefore need one canonical cross-process
home; this module provides it (see DESIGN.md §4.3):

* :class:`SharedBufferRegistry` (parent side) — assigns every owning base
  buffer a *slot*, backs it with a ``multiprocessing.shared_memory`` segment
  mirroring the buffer's exact byte layout, and synchronises bytes between
  the parent arrays and the segments at drain boundaries (``copy_in`` /
  ``copy_out``).  ``copy_in`` only copies (and version-bumps) buffers whose
  bytes actually differ from the segment, so worker-side digest caches
  survive multi-barrier programs whose inputs the parent never touched.
* :class:`SharedVersionTable` — the cross-process write-version protocol:
  one ``int64`` version per slot in its own shared segment, bumped under a
  shared lock whenever a write to the buffer commits in *any* process.  The
  worker-side ATM key generator keys its digest caches on these versions,
  exactly as the in-process :class:`~repro.runtime.data.RegionVersionRegistry`
  does for single-process runs.
* :class:`WorkerArena` (worker side) — attaches segments lazily by name and
  materialises :class:`~repro.runtime.data.ArrayRef` /
  :class:`~repro.runtime.data.RegionDescriptor` records as NumPy views whose
  common ndarray base preserves region identity (so per-region caches hit
  across tasks within a worker).

Attach/detach is name-based, so the protocol works under every
multiprocessing start method (``fork``, ``spawn``, ``forkserver``).
"""

from __future__ import annotations

import multiprocessing
from multiprocessing import shared_memory
from typing import Optional

import numpy as np

from repro.common.exceptions import RuntimeStateError
from repro.runtime.data import ArrayRef, RegionDescriptor, _base_buffer

__all__ = ["SharedVersionTable", "SharedBufferRegistry", "WorkerArena"]


class SharedVersionTable:
    """Monotonic write-versions shared across processes (one ``int64``/slot).

    Reads are lock-free (an aligned 8-byte load); bumps take the shared lock
    so concurrent writers to *sibling* regions of one base buffer can never
    lose an increment (a lost increment could let a stale cached digest
    survive a later write).
    """

    def __init__(
        self,
        capacity: int = 4096,
        name: Optional[str] = None,
        lock=None,
        context=None,
    ) -> None:
        self.capacity = capacity
        self._owner = name is None
        if self._owner:
            ctx = context or multiprocessing.get_context()
            self._shm = shared_memory.SharedMemory(create=True, size=capacity * 8)
            self._lock = lock if lock is not None else ctx.Lock()
            self.versions = np.ndarray((capacity,), dtype=np.int64, buffer=self._shm.buf)
            self.versions[:] = 0
        else:
            self._shm = shared_memory.SharedMemory(name=name)
            self._lock = lock
            self.versions = np.ndarray((capacity,), dtype=np.int64, buffer=self._shm.buf)

    @classmethod
    def attach(cls, name: str, capacity: int, lock) -> "SharedVersionTable":
        return cls(capacity=capacity, name=name, lock=lock)

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def lock(self):
        return self._lock

    def read(self, slot: int) -> int:
        return int(self.versions[slot])

    def bump(self, slot: int) -> int:
        with self._lock:
            self.versions[slot] += 1
            return int(self.versions[slot])

    def close(self) -> None:
        self.versions = None  # release the exported buffer before closing
        self._shm.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass


class _SharedBuffer:
    """Parent-side record of one base buffer mirrored into shared memory."""

    __slots__ = ("slot", "base", "shm", "mirror", "flat_mirror")

    def __init__(self, slot: int, base: np.ndarray, shm: shared_memory.SharedMemory) -> None:
        self.slot = slot
        self.base = base
        self.shm = shm
        # A view over the segment with the base buffer's exact layout, so the
        # byte offsets computed from parent addresses stay valid in workers.
        self.mirror = np.ndarray(
            base.shape, dtype=base.dtype, buffer=shm.buf, strides=base.strides
        )
        self.flat_mirror = np.ndarray((shm.size,), dtype=np.uint8, buffer=shm.buf)


class SharedBufferRegistry:
    """Parent-side slot registry mapping base buffers to shared segments."""

    def __init__(self, version_table: SharedVersionTable) -> None:
        self.version_table = version_table
        self._by_id: dict[int, _SharedBuffer] = {}
        self._entries: list[_SharedBuffer] = []

    def __len__(self) -> int:
        return len(self._entries)

    def register(self, base: np.ndarray) -> _SharedBuffer:
        """Register an owning base buffer, creating its segment on first sight."""
        entry = self._by_id.get(id(base))
        if entry is not None and entry.base is base:
            return entry
        slot = len(self._entries)
        if slot >= self.version_table.capacity:
            raise RuntimeStateError(
                f"shared version table full ({self.version_table.capacity} slots); "
                "raise the ProcessExecutor version-table capacity"
            )
        shm = shared_memory.SharedMemory(create=True, size=max(1, int(base.nbytes)))
        entry = _SharedBuffer(slot, base, shm)
        # Seed the segment immediately: buffers can be registered mid-drain
        # (first touched by a task dispatched after copy_in ran).
        np.copyto(entry.mirror, base, casting="no")
        self._entries.append(entry)
        self._by_id[id(base)] = entry
        return entry

    def entry_for_array(self, array: np.ndarray) -> _SharedBuffer:
        """Registry entry of the base buffer owning ``array`` (registering it)."""
        return self.register(_base_buffer(array))

    def array_ref(self, array: np.ndarray) -> ArrayRef:
        """Serializable handle reconstructing ``array`` inside a worker."""
        entry = self.entry_for_array(array)
        base_addr = entry.base.__array_interface__["data"][0]
        my_addr = array.__array_interface__["data"][0]
        return ArrayRef(
            shm_name=entry.shm.name,
            base_nbytes=int(entry.base.nbytes),
            slot=entry.slot,
            offset=int(my_addr - base_addr),
            shape=tuple(array.shape),
            strides=tuple(array.strides),
            dtype=array.dtype.str,
        )

    @staticmethod
    def _mirror_matches(entry: _SharedBuffer) -> bool:
        """Byte-level comparison (NaN-safe: ``array_equal`` treats NaN != NaN,
        which would defeat the skip forever for any buffer holding a NaN)."""
        base = entry.base
        flat = base.ravel(order="K")
        if not flat.flags.c_contiguous:  # pragma: no cover - exotic owners
            return False
        return np.array_equal(
            entry.flat_mirror[: base.nbytes], flat.view(np.uint8)
        )

    def copy_in(self) -> int:
        """Mirror parent bytes into the segments; returns buffers refreshed.

        Only buffers whose bytes differ are copied, and each refresh bumps
        the shared version so worker-side key caches can never serve a
        digest for bytes the parent replaced between drains.
        """
        refreshed = 0
        for entry in self._entries:
            if self._mirror_matches(entry):
                continue
            np.copyto(entry.mirror, entry.base, casting="no")
            self.version_table.bump(entry.slot)
            refreshed += 1
        return refreshed

    def copy_out(self, slots: Optional[set[int]] = None) -> int:
        """Copy worker-written segment bytes back into the parent arrays."""
        copied = 0
        for entry in self._entries:
            if slots is not None and entry.slot not in slots:
                continue
            np.copyto(entry.base, entry.mirror, casting="no")
            copied += 1
        return copied

    def close(self) -> None:
        for entry in self._entries:
            entry.mirror = None
            entry.flat_mirror = None
            entry.shm.close()
            try:
                entry.shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
        self._entries.clear()
        self._by_id.clear()


class WorkerArena:
    """Worker-side lazy attachment of shared segments and region views."""

    def __init__(self, version_table: SharedVersionTable) -> None:
        self.version_table = version_table
        self._segments: dict[str, tuple[shared_memory.SharedMemory, np.ndarray]] = {}
        self._views: dict[tuple, np.ndarray] = {}
        self._regions: dict[tuple, "object"] = {}

    def _base_array(self, shm_name: str, nbytes: int) -> np.ndarray:
        cached = self._segments.get(shm_name)
        if cached is not None:
            return cached[1]
        shm = shared_memory.SharedMemory(name=shm_name)
        # One flat uint8 ndarray per segment: every view built over it shares
        # this object as its ``.base``, preserving region identity for the
        # keygen caches.
        base = np.ndarray((max(1, nbytes),), dtype=np.uint8, buffer=shm.buf)
        self._segments[shm_name] = (shm, base)
        return base

    def view(self, ref: ArrayRef) -> np.ndarray:
        key = (ref.shm_name, ref.offset, ref.shape, ref.strides, ref.dtype)
        cached = self._views.get(key)
        if cached is not None:
            return cached
        base = self._base_array(ref.shm_name, ref.base_nbytes)
        array = np.ndarray(
            ref.shape,
            dtype=np.dtype(ref.dtype),
            buffer=base,
            offset=ref.offset,
            strides=ref.strides,
        )
        self._views[key] = array
        return array

    def region(self, descriptor: RegionDescriptor):
        from repro.runtime.data import SharedDataRegion

        ref = descriptor.ref
        key = (ref.shm_name, ref.offset, ref.shape, ref.strides, ref.dtype)
        cached = self._regions.get(key)
        if cached is not None:
            return cached
        region = SharedDataRegion(
            self.view(ref),
            name=descriptor.name,
            slot=ref.slot,
            version_table=self.version_table,
        )
        self._regions[key] = region
        return region

    def close(self) -> None:
        self._views.clear()
        self._regions.clear()
        for shm, _base in self._segments.values():
            try:
                shm.close()
            except BufferError:  # pragma: no cover - views still alive
                pass
        self._segments.clear()
