"""Schedulers: the policy layer between the TDG and the workers.

A scheduler owns a ready queue and decides which ready task an idle worker
receives.  The paper uses the Nanos++ default (a central FIFO ready queue);
LIFO and work-stealing policies are provided for the scheduling ablation
bench.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.common.config import RuntimeConfig
from repro.common.exceptions import ConfigurationError, SchedulerError
from repro.common.registry import SCHEDULERS
from repro.runtime.ready_queue import (
    FIFOReadyQueue,
    LIFOReadyQueue,
    WorkStealingDeques,
)
from repro.runtime.task import Task

__all__ = ["Scheduler", "make_scheduler"]


class Scheduler:
    """Wraps a ready queue behind a uniform push/pop interface."""

    def __init__(self, queue) -> None:
        self._queue = queue

    def task_ready(self, task: Task, worker_hint: Optional[int] = None) -> None:
        """Called by the runtime when a task's dependences are satisfied."""
        self._queue.push(task, worker_hint)

    def tasks_ready(
        self,
        tasks: Sequence[Task],
        worker_hints: Optional[Sequence[int]] = None,
    ) -> None:
        """Batched :meth:`task_ready`: one queue-lock acquisition per batch.

        Service order and (for work stealing) deque placement are identical
        to calling :meth:`task_ready` per task with the same hints.  Custom
        queues registered through the scheduler seam that predate
        ``push_many`` degrade to per-task pushes instead of breaking.
        """
        push_many = getattr(self._queue, "push_many", None)
        if push_many is not None:
            push_many(tasks, worker_hints)
            return
        push = self._queue.push
        for index, task in enumerate(tasks):
            push(task, worker_hints[index] if worker_hints is not None else None)

    def next_task(self, worker_id: int = 0) -> Optional[Task]:
        """Called by an idle worker; ``None`` means no work is available."""
        return self._queue.pop(worker_id)

    def pending(self) -> int:
        """Number of tasks currently waiting in the ready queue."""
        return len(self._queue)

    @property
    def stats(self):
        return self._queue.stats


# Builtin factories, resolved by name through the scheduler registry; plugins
# add their own with repro.session.register_scheduler(name, factory).
SCHEDULERS.register(
    "fifo", lambda config: Scheduler(FIFOReadyQueue()), replace=True
)
SCHEDULERS.register(
    "lifo", lambda config: Scheduler(LIFOReadyQueue()), replace=True
)
SCHEDULERS.register(
    "work_stealing",
    lambda config: Scheduler(WorkStealingDeques(config.num_threads, seed=config.seed)),
    replace=True,
)


def make_scheduler(config: RuntimeConfig) -> Scheduler:
    """Build the scheduler named by ``config.scheduler`` (registry lookup)."""
    try:
        factory = SCHEDULERS.factory(config.scheduler)
    except ConfigurationError as exc:
        raise SchedulerError(str(exc)) from exc
    return factory(config)
