"""Schedulers: the policy layer between the TDG and the workers.

A scheduler owns a ready queue and decides which ready task an idle worker
receives.  The paper uses the Nanos++ default (a central FIFO ready queue);
LIFO and work-stealing policies are provided for the scheduling ablation
bench.
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import RuntimeConfig
from repro.common.exceptions import ConfigurationError, SchedulerError
from repro.common.registry import SCHEDULERS
from repro.runtime.ready_queue import (
    FIFOReadyQueue,
    LIFOReadyQueue,
    WorkStealingDeques,
)
from repro.runtime.task import Task

__all__ = ["Scheduler", "make_scheduler"]


class Scheduler:
    """Wraps a ready queue behind a uniform push/pop interface."""

    def __init__(self, queue) -> None:
        self._queue = queue

    def task_ready(self, task: Task, worker_hint: Optional[int] = None) -> None:
        """Called by the runtime when a task's dependences are satisfied."""
        self._queue.push(task, worker_hint)

    def next_task(self, worker_id: int = 0) -> Optional[Task]:
        """Called by an idle worker; ``None`` means no work is available."""
        return self._queue.pop(worker_id)

    def pending(self) -> int:
        """Number of tasks currently waiting in the ready queue."""
        return len(self._queue)

    @property
    def stats(self):
        return self._queue.stats


# Builtin factories, resolved by name through the scheduler registry; plugins
# add their own with repro.session.register_scheduler(name, factory).
SCHEDULERS.register(
    "fifo", lambda config: Scheduler(FIFOReadyQueue()), replace=True
)
SCHEDULERS.register(
    "lifo", lambda config: Scheduler(LIFOReadyQueue()), replace=True
)
SCHEDULERS.register(
    "work_stealing",
    lambda config: Scheduler(WorkStealingDeques(config.num_threads, seed=config.seed)),
    replace=True,
)


def make_scheduler(config: RuntimeConfig) -> Scheduler:
    """Build the scheduler named by ``config.scheduler`` (registry lookup)."""
    try:
        factory = SCHEDULERS.factory(config.scheduler)
    except ConfigurationError as exc:
        raise SchedulerError(str(exc)) from exc
    return factory(config)
