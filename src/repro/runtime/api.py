"""User-facing runtime API.

Programs are written the way OmpSs programs are: functions are annotated as
task types, invocations declare their data accesses, and a barrier
(``wait_all``) synchronises the master with the workers.

Example
-------
>>> import numpy as np
>>> from repro.runtime import TaskRuntime, In, Out
>>> from repro.runtime.task import TaskType
>>>
>>> rt = TaskRuntime()
>>> saxpy = TaskType("saxpy", memoizable=True)
>>> x = np.arange(4, dtype=np.float64); y = np.zeros(4)
>>> def body(xv, yv, a):
...     yv[:] = a * xv
>>> _ = rt.submit(saxpy, body, accesses=[In(x), Out(y)], args=(x, y, 2.0))
>>> _ = rt.wait_all()
>>> y.tolist()
[0.0, 2.0, 4.0, 6.0]
"""

from __future__ import annotations

import functools
from typing import Callable, Optional, Sequence

from repro.common.config import RuntimeConfig
from repro.common.exceptions import RuntimeStateError
from repro.runtime.atm_protocol import MemoizationEngineProtocol
from repro.runtime.data import DataAccess
from repro.runtime.executor import BaseExecutor, RunResult, SerialExecutor
from repro.runtime.graph import TaskDependenceGraph
from repro.runtime.task import Task, TaskType

__all__ = ["TaskRuntime", "task"]


class TaskRuntime:
    """The runtime a program instantiates to submit and run tasks.

    Parameters
    ----------
    executor:
        Any :class:`BaseExecutor` (serial, threaded or simulated).  Defaults
        to a fresh :class:`SerialExecutor`.
    engine:
        Optional memoization engine; if the executor was constructed without
        one, passing it here installs it.
    config:
        Runtime configuration used when a default executor must be created.
    """

    def __init__(
        self,
        executor: Optional[BaseExecutor] = None,
        engine: Optional[MemoizationEngineProtocol] = None,
        config: Optional[RuntimeConfig] = None,
    ) -> None:
        self.config = config or RuntimeConfig(num_threads=1)
        if executor is None:
            executor = SerialExecutor(config=self.config, engine=engine)
        elif engine is not None and executor.engine is None:
            executor.engine = engine
        self.executor = executor
        self.graph = TaskDependenceGraph(on_ready=self.executor.notify_ready)
        self._closed = False
        self._submitted = 0

    # -- program construction --------------------------------------------------
    def submit(
        self,
        task_type: TaskType,
        function: Callable,
        accesses: Sequence[DataAccess],
        args: tuple = (),
        kwargs: Optional[dict] = None,
    ) -> Task:
        """Create a task and hand it to the dependence system."""
        if self._closed:
            raise RuntimeStateError("runtime already finished")
        task = Task(
            task_type=task_type,
            function=function,
            accesses=list(accesses),
            args=tuple(args),
            kwargs=dict(kwargs or {}),
            task_id=self._submitted,
        )
        self._submitted += 1
        self.graph.add_task(task)
        return task

    def wait_all(self) -> RunResult:
        """Barrier: run every submitted task to completion (``taskwait``)."""
        if self._closed:
            raise RuntimeStateError("runtime already finished")
        return self.executor.drain(self.graph)

    def finish(self) -> RunResult:
        """Final barrier; afterwards the runtime rejects new submissions.

        Also releases executor-held resources (the process backend's worker
        pool and shared-memory segments); the returned result stays valid.
        """
        result = self.wait_all()
        self._closed = True
        self.executor.close()
        return result

    # -- introspection -----------------------------------------------------------
    @property
    def task_count(self) -> int:
        return self.graph.task_count

    @property
    def result(self) -> RunResult:
        return self.executor.result()

    def __enter__(self) -> "TaskRuntime":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None and not self._closed:
            self.finish()


def task(
    task_type: TaskType,
    accesses_fn: Callable[..., Sequence[DataAccess]],
) -> Callable[[Callable], Callable]:
    """Decorator turning a function into a task-submitting stub.

    ``accesses_fn`` receives the same arguments as the decorated function and
    returns the list of data accesses to declare — the Python analogue of the
    ``depend(in: ..., out: ...)`` clauses of an OmpSs pragma.  The decorated
    function gains a ``runtime`` keyword argument; when provided, calling it
    submits a task instead of executing immediately.

    >>> import numpy as np
    >>> from repro.runtime import In, Out, TaskRuntime
    >>> from repro.runtime.task import TaskType
    >>> tt = TaskType("double_it", memoizable=True)
    >>> @task(tt, lambda src, dst: [In(src), Out(dst)])
    ... def double_it(src, dst):
    ...     dst[:] = 2 * src
    >>> rt = TaskRuntime()
    >>> a, b = np.ones(3), np.zeros(3)
    >>> double_it(a, b, runtime=rt)        # doctest: +ELLIPSIS
    Task(...)
    >>> _ = rt.wait_all()
    >>> b.tolist()
    [2.0, 2.0, 2.0]
    """

    def decorator(function: Callable) -> Callable:
        @functools.wraps(function)
        def wrapper(*args, runtime: Optional[TaskRuntime] = None, **kwargs):
            if runtime is None:
                return function(*args, **kwargs)
            accesses = accesses_fn(*args, **kwargs)
            return runtime.submit(
                task_type, function, accesses=accesses, args=args, kwargs=kwargs
            )

        wrapper.task_type = task_type  # type: ignore[attr-defined]
        return wrapper

    return decorator
