"""Legacy user-facing runtime API — superseded by :mod:`repro.session`.

Programs are written the way OmpSs programs are: functions are annotated as
task types, invocations declare their data accesses, and a barrier
(``wait_all``) synchronises the master with the workers.  The stable,
declarative entry point for all of this is the **Session API**:

>>> import numpy as np
>>> from repro.session import Session, In, Out
>>> with Session(executor="serial") as s:
...     @s.task(memoizable=True)
...     def saxpy(x: In, y: Out, a):
...         y[:] = a * x
...     x = np.arange(4, dtype=np.float64); y = np.zeros(4)
...     _ = saxpy(x, y, 2.0)
...     result = s.wait_all()
>>> y.tolist()
[0.0, 2.0, 4.0, 6.0]
>>> result.tasks_completed
1

A :class:`~repro.session.Session` assembles the memoization engine, the
execution backend (by registry name: ``executor="process"``,
``policy="dynamic"``) and the dependence graph from one
:class:`~repro.session.ReproConfig` tree; see DESIGN.md §6 for the full
lifecycle and the registry extension points.

This module keeps the original surface alive as thin deprecation shims:

* :class:`TaskRuntime` — the pre-Session runtime handle.  Constructing one
  emits a :class:`DeprecationWarning` and delegates every operation to an
  internally held Session.
* :func:`task` — the module-level decorator that needed a separate
  ``accesses_fn`` lambda.  Session's ``@s.task`` infers accesses from
  parameter annotations instead.

Both shims will be removed once nothing in-tree constructs them; new code
must use :mod:`repro.session`.
"""

from __future__ import annotations

import functools
import warnings
from typing import Callable, Optional, Sequence

from repro.common.config import RuntimeConfig
from repro.runtime.data import DataAccess
from repro.runtime.executor import BaseExecutor, RunResult
from repro.runtime.task import Task, TaskType

__all__ = ["TaskRuntime", "task"]


def _deprecated(what: str, instead: str) -> None:
    warnings.warn(
        f"{what} is deprecated; use {instead} instead",
        DeprecationWarning,
        stacklevel=3,
    )


class TaskRuntime:
    """Deprecated pre-Session runtime handle (thin shim).

    .. deprecated::
        Use :class:`repro.session.Session`.  The shim preserves the original
        constructor (``executor`` instance, optional ``engine``, optional
        :class:`RuntimeConfig`) and delegates to a Session, so the new
        lifecycle guarantees — executor teardown on error paths,
        :class:`~repro.common.exceptions.RuntimeStateError` on
        ``result``-before-barrier — apply here too.
    """

    def __init__(
        self,
        executor: Optional[BaseExecutor] = None,
        engine=None,
        config: Optional[RuntimeConfig] = None,
    ) -> None:
        _deprecated("TaskRuntime", "repro.session.Session")
        from repro.runtime.executor import SerialExecutor
        from repro.session.config import ReproConfig
        from repro.session.session import Session

        # Historical constructor semantics, which the stricter Session
        # constructor would otherwise change: with no executor a
        # SerialExecutor is always built (config.executor was never
        # consulted), and an engine argument is silently dropped when the
        # executor already carries one.
        config = config or RuntimeConfig(num_threads=1)
        if executor is None:
            executor = SerialExecutor(config=config, engine=engine)
        if executor.engine is not None:
            engine = None
        self._session = Session(
            ReproConfig(runtime=config), executor=executor, engine=engine
        )

    # -- delegation --------------------------------------------------------------
    @property
    def session(self):
        """The Session this shim delegates to (migration escape hatch)."""
        return self._session

    @property
    def config(self) -> RuntimeConfig:
        return self._session.config.runtime

    @property
    def executor(self) -> BaseExecutor:
        return self._session.executor

    @property
    def graph(self):
        return self._session.graph

    def submit(
        self,
        task_type: TaskType,
        function: Callable,
        accesses: Sequence[DataAccess],
        args: tuple = (),
        kwargs: Optional[dict] = None,
    ) -> Task:
        """Create a task and hand it to the dependence system."""
        return self._session.submit(
            task_type, function, accesses=accesses, args=args, kwargs=kwargs
        )

    def wait_all(self) -> RunResult:
        """Barrier: run every submitted task to completion (``taskwait``)."""
        return self._session.wait_all()

    def finish(self) -> RunResult:
        """Final barrier; afterwards the runtime rejects new submissions."""
        return self._session.finish()

    @property
    def task_count(self) -> int:
        return self._session.task_count

    @property
    def result(self) -> RunResult:
        return self._session.result

    def __enter__(self) -> "TaskRuntime":
        self._session.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._session.__exit__(exc_type, exc, tb)


def task(
    task_type: TaskType,
    accesses_fn: Callable[..., Sequence[DataAccess]],
) -> Callable[[Callable], Callable]:
    """Deprecated decorator turning a function into a task-submitting stub.

    .. deprecated::
        Use ``@session.task(...)`` with ``In``/``Out``/``InOut`` parameter
        annotations — no separate ``accesses_fn`` lambda needed.

    ``accesses_fn`` receives the same arguments as the decorated function and
    returns the list of data accesses to declare.  The decorated function
    gains a ``runtime`` keyword argument; when provided, calling it submits a
    task instead of executing immediately.
    """
    _deprecated("the module-level task() decorator", "@Session.task")

    def decorator(function: Callable) -> Callable:
        @functools.wraps(function)
        def wrapper(*args, runtime: Optional[TaskRuntime] = None, **kwargs):
            if runtime is None:
                return function(*args, **kwargs)
            accesses = accesses_fn(*args, **kwargs)
            return runtime.submit(
                task_type, function, accesses=accesses, args=args, kwargs=kwargs
            )

        wrapper.task_type = task_type  # type: ignore[attr-defined]
        return wrapper

    return decorator
