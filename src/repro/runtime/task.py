"""Tasks and task types.

A **task type** corresponds to one annotated function in the source program
(one ``#pragma omp task`` site in the paper's benchmarks): it carries the
memoization policy knobs that the programmer specifies per task type
(memoizable or not, ``tau_max``, ``L_training``) and an optional cost model
used by the discrete-event simulator.

A **task** is one dynamic instance: the function to run, its declared data
accesses, plain (non-dependence) arguments, and bookkeeping state.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.common.exceptions import TaskDefinitionError
from repro.runtime.data import AccessMode, DataAccess, validate_accesses

__all__ = ["TaskState", "TaskType", "Task", "CostModel"]

#: A cost model maps a task to its simulated execution cost in microseconds.
CostModel = Callable[["Task"], float]


class TaskState(enum.Enum):
    """Lifecycle of a task inside the runtime."""

    CREATED = "created"
    READY = "ready"
    RUNNING = "running"
    MEMOIZED = "memoized"          # outputs provided by the THT, never executed
    WAITING_INFLIGHT = "waiting"   # outputs will be provided by an in-flight task
    FINISHED = "finished"
    FAILED = "failed"              # exhausted its supervision budget (quarantined)
    CANCELLED = "cancelled"        # a (transitive) predecessor failed

    @property
    def is_terminal(self) -> bool:
        return self in (
            TaskState.FINISHED,
            TaskState.MEMOIZED,
            TaskState.FAILED,
            TaskState.CANCELLED,
        )

    @property
    def is_success(self) -> bool:
        """Terminal with usable outputs (finished or memoized)."""
        return self in (TaskState.FINISHED, TaskState.MEMOIZED)


def _default_cost_model(task: "Task") -> float:
    """Fallback cost model: proportional to the bytes the task touches.

    Applications override this with calibrated models; the default assumes
    1 byte of input+output corresponds to 0.005 us of work, which keeps the
    simulator usable for ad-hoc user task graphs.
    """
    nbytes = sum(access.nbytes for access in task.accesses)
    return 1.0 + 0.005 * nbytes


@dataclass
class TaskType:
    """Static description of one task annotation site.

    Attributes
    ----------
    name:
        Unique name of the task type (e.g. ``"bs_thread"``,
        ``"stencilComputation"``).
    memoizable:
        Whether the programmer marked this task type as suitable for ATM
        (Section III-E: the programmer opts task types in).
    tau_max:
        Per-task Chebyshev error threshold used by Dynamic ATM for this task
        type (Table II).  ``None`` falls back to the engine-wide default.
    l_training:
        Number of correctly approximated training tasks required before the
        steady-state phase (Table II).  ``None`` falls back to the default.
    cost_model:
        Simulated execution cost in microseconds for a task of this type.
    deterministic:
        Whether tasks of this type are deterministic given their declared
        inputs.  Non-deterministic task types are never memoized even if
        ``memoizable`` is set (Section III-E limitation).
    """

    name: str
    memoizable: bool = False
    tau_max: Optional[float] = None
    l_training: Optional[int] = None
    cost_model: CostModel = _default_cost_model
    deterministic: bool = True

    _counter: itertools.count = field(
        default_factory=itertools.count, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.name:
            raise TaskDefinitionError("TaskType requires a non-empty name")
        if self.tau_max is not None and self.tau_max < 0:
            raise TaskDefinitionError("tau_max must be >= 0")
        if self.l_training is not None and self.l_training < 1:
            raise TaskDefinitionError("l_training must be >= 1")

    @property
    def atm_eligible(self) -> bool:
        """Task types that ATM is allowed to memoize."""
        return self.memoizable and self.deterministic

    def next_instance_index(self) -> int:
        return next(self._counter)

    def __hash__(self) -> int:
        return hash(self.name)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TaskType) and other.name == self.name


class Task:
    """One dynamic task instance.

    Tasks compare and hash by identity: two distinct dynamic instances are
    never "equal", even if they reference the same regions and arguments.

    The ``function`` is invoked as ``function(*args, **kwargs)``; the declared
    ``accesses`` alias application memory, so the function reads its inputs
    and writes its outputs directly through the NumPy arrays it was built
    around (the accesses exist so the runtime and ATM can reason about the
    data, exactly like OmpSs pragma clauses).

    The class is slotted and most derived views (``label``, ``inputs``,
    ``outputs``) are computed lazily and cached: task construction sits on
    the submission fast path, and only the ATM/simulator layers ever read
    the derived views.
    """

    __slots__ = (
        "task_type", "function", "accesses", "args", "kwargs", "task_id",
        "state", "creation_index", "creation_time", "start_time",
        "finish_time", "executed_on", "_label", "_inputs", "_outputs",
        "_dep_mark",
    )

    def __init__(
        self,
        task_type: TaskType,
        function: Callable[..., Any],
        accesses: Sequence[DataAccess],
        args: tuple = (),
        kwargs: Optional[dict] = None,
        task_id: int = -1,
        label: str = "",
        state: TaskState = TaskState.CREATED,
        creation_index: int = -1,
        creation_time: float = 0.0,
    ) -> None:
        validate_accesses(accesses)
        if not callable(function):
            raise TaskDefinitionError("task function must be callable")
        self.task_type = task_type
        self.function = function
        self.accesses = accesses
        self.args = args
        self.kwargs = kwargs if kwargs is not None else {}
        self.task_id = task_id
        self.state = state
        self.creation_index = creation_index
        self.creation_time = creation_time
        self.start_time = 0.0
        self.finish_time = 0.0
        self.executed_on = -1
        self._label = label or None
        self._inputs: Optional[tuple] = None
        self._outputs: Optional[tuple] = None
        #: Monotonic epoch stamp used by the dependence tracker for O(1)
        #: predecessor dedup (see repro.runtime.dependences).
        self._dep_mark = 0

    # -- labelling -----------------------------------------------------------
    @property
    def label(self) -> str:
        """``"<type>#<task_id>"``, computed lazily (one f-string per task is
        measurable at submission rates; most labels are never read)."""
        label = self._label
        if label is None:
            label = f"{self.task_type.name}#{self.task_id}"
            if self.task_id >= 0:
                # Cache only once the runtime has assigned the final id.
                self._label = label
        return label

    @label.setter
    def label(self, value: str) -> None:
        self._label = value or None

    # -- data views ----------------------------------------------------------
    @property
    def inputs(self) -> tuple[DataAccess, ...]:
        """Accesses the task reads (``in`` and ``inout``), cached."""
        inputs = self._inputs
        if inputs is None:
            inputs = tuple(a for a in self.accesses if a.reads)
            self._inputs = inputs
        return inputs

    @property
    def outputs(self) -> tuple[DataAccess, ...]:
        """Accesses the task writes (``out`` and ``inout``), cached."""
        outputs = self._outputs
        if outputs is None:
            outputs = tuple(a for a in self.accesses if a.writes)
            self._outputs = outputs
        return outputs

    @property
    def input_bytes(self) -> int:
        return sum(a.nbytes for a in self.inputs)

    @property
    def output_bytes(self) -> int:
        return sum(a.nbytes for a in self.outputs)

    @property
    def strict_outputs(self) -> list[DataAccess]:
        """Accesses declared ``out`` only."""
        return [a for a in self.accesses if a.mode == AccessMode.OUT]

    # -- execution -----------------------------------------------------------
    def run(self) -> Any:
        """Execute the task body."""
        return self.function(*self.args, **self.kwargs)

    def simulated_cost(self) -> float:
        """Simulated execution cost (microseconds) from the type's cost model."""
        return float(self.task_type.cost_model(self))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Task({self.label}, state={self.state.value})"
