"""Tasks and task types.

A **task type** corresponds to one annotated function in the source program
(one ``#pragma omp task`` site in the paper's benchmarks): it carries the
memoization policy knobs that the programmer specifies per task type
(memoizable or not, ``tau_max``, ``L_training``) and an optional cost model
used by the discrete-event simulator.

A **task** is one dynamic instance: the function to run, its declared data
accesses, plain (non-dependence) arguments, and bookkeeping state.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.common.exceptions import TaskDefinitionError
from repro.runtime.data import AccessMode, DataAccess, validate_accesses

__all__ = ["TaskState", "TaskType", "Task", "CostModel"]

#: A cost model maps a task to its simulated execution cost in microseconds.
CostModel = Callable[["Task"], float]


class TaskState(enum.Enum):
    """Lifecycle of a task inside the runtime."""

    CREATED = "created"
    READY = "ready"
    RUNNING = "running"
    MEMOIZED = "memoized"          # outputs provided by the THT, never executed
    WAITING_INFLIGHT = "waiting"   # outputs will be provided by an in-flight task
    FINISHED = "finished"

    @property
    def is_terminal(self) -> bool:
        return self in (TaskState.FINISHED, TaskState.MEMOIZED)


def _default_cost_model(task: "Task") -> float:
    """Fallback cost model: proportional to the bytes the task touches.

    Applications override this with calibrated models; the default assumes
    1 byte of input+output corresponds to 0.005 us of work, which keeps the
    simulator usable for ad-hoc user task graphs.
    """
    nbytes = sum(access.nbytes for access in task.accesses)
    return 1.0 + 0.005 * nbytes


@dataclass
class TaskType:
    """Static description of one task annotation site.

    Attributes
    ----------
    name:
        Unique name of the task type (e.g. ``"bs_thread"``,
        ``"stencilComputation"``).
    memoizable:
        Whether the programmer marked this task type as suitable for ATM
        (Section III-E: the programmer opts task types in).
    tau_max:
        Per-task Chebyshev error threshold used by Dynamic ATM for this task
        type (Table II).  ``None`` falls back to the engine-wide default.
    l_training:
        Number of correctly approximated training tasks required before the
        steady-state phase (Table II).  ``None`` falls back to the default.
    cost_model:
        Simulated execution cost in microseconds for a task of this type.
    deterministic:
        Whether tasks of this type are deterministic given their declared
        inputs.  Non-deterministic task types are never memoized even if
        ``memoizable`` is set (Section III-E limitation).
    """

    name: str
    memoizable: bool = False
    tau_max: Optional[float] = None
    l_training: Optional[int] = None
    cost_model: CostModel = _default_cost_model
    deterministic: bool = True

    _counter: itertools.count = field(
        default_factory=itertools.count, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.name:
            raise TaskDefinitionError("TaskType requires a non-empty name")
        if self.tau_max is not None and self.tau_max < 0:
            raise TaskDefinitionError("tau_max must be >= 0")
        if self.l_training is not None and self.l_training < 1:
            raise TaskDefinitionError("l_training must be >= 1")

    @property
    def atm_eligible(self) -> bool:
        """Task types that ATM is allowed to memoize."""
        return self.memoizable and self.deterministic

    def next_instance_index(self) -> int:
        return next(self._counter)

    def __hash__(self) -> int:
        return hash(self.name)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TaskType) and other.name == self.name


@dataclass(eq=False)
class Task:
    """One dynamic task instance.

    Tasks compare and hash by identity: two distinct dynamic instances are
    never "equal", even if they reference the same regions and arguments.

    The ``function`` is invoked as ``function(*args, **kwargs)``; the declared
    ``accesses`` alias application memory, so the function reads its inputs
    and writes its outputs directly through the NumPy arrays it was built
    around (the accesses exist so the runtime and ATM can reason about the
    data, exactly like OmpSs pragma clauses).
    """

    task_type: TaskType
    function: Callable[..., Any]
    accesses: Sequence[DataAccess]
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    task_id: int = -1
    label: str = ""
    state: TaskState = TaskState.CREATED

    # Filled in by the runtime / executors.
    creation_index: int = -1
    creation_time: float = 0.0
    start_time: float = 0.0
    finish_time: float = 0.0
    executed_on: int = -1

    def __post_init__(self) -> None:
        validate_accesses(self.accesses)
        if not callable(self.function):
            raise TaskDefinitionError("task function must be callable")
        if not self.label:
            self.label = f"{self.task_type.name}#{self.task_id}"

    # -- data views ----------------------------------------------------------
    @property
    def inputs(self) -> list[DataAccess]:
        """Accesses the task reads (``in`` and ``inout``)."""
        return [a for a in self.accesses if a.reads]

    @property
    def outputs(self) -> list[DataAccess]:
        """Accesses the task writes (``out`` and ``inout``)."""
        return [a for a in self.accesses if a.writes]

    @property
    def input_bytes(self) -> int:
        return sum(a.nbytes for a in self.inputs)

    @property
    def output_bytes(self) -> int:
        return sum(a.nbytes for a in self.outputs)

    @property
    def strict_outputs(self) -> list[DataAccess]:
        """Accesses declared ``out`` only."""
        return [a for a in self.accesses if a.mode == AccessMode.OUT]

    # -- execution -----------------------------------------------------------
    def run(self) -> Any:
        """Execute the task body."""
        return self.function(*self.args, **self.kwargs)

    def simulated_cost(self) -> float:
        """Simulated execution cost (microseconds) from the type's cost model."""
        return float(self.task_type.cost_model(self))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Task({self.label}, state={self.state.value})"
