"""Multiprocess shared-memory execution backend.

:class:`ProcessExecutor` runs task bodies in real worker *processes*, the
only Python backend that can use more than one core for the compute-bound
portions of a program (the ``ThreadedExecutor`` is GIL-bound, see DESIGN.md
§4.2).  The division of labour:

* **Parent** — owns the task dependence graph, the scheduler and the
  reference :class:`~repro.atm.engine.ATMEngine`.  Ready tasks are encoded
  as small descriptors (function by reference, array payloads as
  :class:`~repro.runtime.data.ArrayRef` handles into shared memory) and
  batched round-robin onto *per-worker* task queues (chunked dispatch,
  ``RuntimeConfig.mp_chunk_size``), so the parent always knows exactly
  which worker holds which in-flight chunk — the bookkeeping that makes
  crash recovery possible.  Completions release successors through the
  ordinary graph machinery.
* **Workers** — pull chunks from their private queue, rebuild each task over
  :mod:`multiprocessing.shared_memory` views
  (:class:`~repro.runtime.shm.WorkerArena`), run the full ATM protocol
  against a **per-worker engine** (lookup → execute/skip → commit), bump the
  cross-process write-version table for every committed write, and report
  per-task accounting.
* **Drain barrier** — when the graph is finished the parent copies written
  buffers back into the application arrays and collects one serializable
  delta per worker (``ATMEngine.snapshot(reset=True)``: stats + THT
  commits), merging them into the parent engine
  (``ATMEngine.merge``), so reporting, figures and Table III reaction paths
  see the consolidated state.

Per-worker engines deliberately run with the IKT disabled: a worker
processes one task at a time, so an in-flight twin can never exist inside a
worker, and cross-process in-flight tracking would serialise every lookup on
one lock — the THT delta merge at the barrier recovers the sharing instead.

Worker processes persist across drains (barriers inside an application keep
their warm THTs and keygen caches); :meth:`ProcessExecutor.close` — called
automatically by :meth:`repro.session.Session.finish` and by a GC finalizer — shuts
the pool down and unlinks every shared segment.

**Supervision** (DESIGN.md §7): a worker that *dies* mid-drain (killed,
segfault, ``os._exit``) is detected by ``Process.is_alive()`` polling,
respawned in place, and its in-flight chunks are resubmitted round-robin to
the surviving pool — mirroring the network backend's endpoint failover,
including honest ``lost_deltas`` accounting for the un-merged engine delta
that died with the worker.  A task whose repeated resubmissions keep
killing workers is declared poison (``WorkerLostError``) and quarantined
or aborted per ``RuntimeConfig.on_task_failure``.  When
``task_timeout_s`` is set, dispatch degrades to one task per chunk and
workers announce chunk starts, so a wedged task is identifiable: the
parent kills the worker hosting it, respawns, and records a
``TaskTimeoutError``.  Caveat: a crashed worker may have completed (and
committed to shared memory) a prefix of its chunk that the parent never
heard about; resubmission re-runs those tasks, which is only transparent
for idempotent bodies — tasks with ``InOut`` accumulation semantics can
observe a double apply after a crash.
"""

from __future__ import annotations

import multiprocessing
import pickle
import queue as queue_module
import time
import traceback
import warnings
import weakref
from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro.common.config import RuntimeConfig
from repro.common.exceptions import (
    RuntimeStateError,
    TaskFailedError,
    TaskTimeoutError,
    WorkerLostError,
)
from repro.runtime.atm_protocol import ATMAction, ATMDecision, EXECUTE_DECISION
from repro.runtime.data import AccessMode, ArrayRef, DataAccess, RegionDescriptor
from repro.runtime.executor import BaseExecutor, RunResult
from repro.runtime.graph import TaskDependenceGraph
from repro.runtime.shm import SharedBufferRegistry, SharedVersionTable, WorkerArena
from repro.runtime.supervision import POLL_INTERVAL
from repro.runtime.task import Task, TaskState, TaskType

__all__ = ["ProcessExecutor", "make_engine_spec"]


@dataclass(frozen=True)
class _TaskTypeSpec:
    """Reduced, picklable description of a :class:`TaskType`.

    Cost models are deliberately dropped: they are only used by the
    simulator, and applications routinely define them as (unpicklable)
    lambdas.
    """

    name: str
    memoizable: bool
    tau_max: Optional[float]
    l_training: Optional[int]
    deterministic: bool

    @classmethod
    def of(cls, task_type: TaskType) -> "_TaskTypeSpec":
        return cls(
            name=task_type.name,
            memoizable=task_type.memoizable,
            tau_max=task_type.tau_max,
            l_training=task_type.l_training,
            deterministic=task_type.deterministic,
        )

    def build(self) -> TaskType:
        return TaskType(
            name=self.name,
            memoizable=self.memoizable,
            tau_max=self.tau_max,
            l_training=self.l_training,
            deterministic=self.deterministic,
        )


@dataclass(frozen=True)
class _TaskDescriptor:
    """Everything a worker needs to rebuild and run one task."""

    task_id: int
    creation_index: int
    type_spec: _TaskTypeSpec
    function: Any
    accesses: tuple[tuple[RegionDescriptor, str], ...]
    args: tuple
    kwargs: dict


@dataclass(frozen=True)
class _EngineSpec:
    """Recipe for the per-worker ATM engine (policy state stays per worker)."""

    mode: str
    config: Any  # ATMConfig
    p: Optional[float]


def make_engine_spec(engine) -> Optional[_EngineSpec]:
    """Serializable recipe replicating ``engine`` into a remote worker.

    Shared by the process backend and the network backend
    (:mod:`repro.runtime.net_executor`): both run per-worker engine replicas
    that merge back through the snapshot/merge delta protocol.
    """
    if engine is None:
        return None
    policy = getattr(engine, "policy", None)
    config = getattr(engine, "config", None)
    if policy is None or config is None:
        raise RuntimeStateError(
            "worker-replicated backends require an ATMEngine-compatible "
            "engine (with .policy and .config) or engine=None; custom "
            "in-process engines cannot be replicated into workers"
        )
    # Policies built through the registry carry their registered name —
    # the faithful recipe for plugin policies, whose class-level ``mode``
    # attribute is whatever builtin they subclass.  Hand-assembled policy
    # instances fall back to that class attribute.  Plugin policies
    # require the plugin module to be imported (or the start method to be
    # fork) wherever the worker runs.
    mode = getattr(policy, "registry_name", None) or policy.mode.value
    return _EngineSpec(mode=mode, config=policy.config, p=policy.config.p)


def _build_worker_engine(spec: Optional[_EngineSpec]):
    if spec is None:
        return None
    from repro.atm.engine import ATMEngine
    from repro.atm.policy import make_policy

    # One task at a time per worker: an in-flight twin cannot exist inside a
    # worker, so the IKT would only ever miss (see module docstring).
    config = spec.config.with_overrides(use_ikt=False)
    policy = make_policy(spec.mode, config, p=spec.p)
    engine = ATMEngine(config=config, policy=policy, num_threads=1)
    engine.enable_delta_snapshots()
    return engine


def _encode_payload(value, registry: SharedBufferRegistry):
    """Swap every ndarray in a (nested) argument payload for an ArrayRef."""
    if isinstance(value, np.ndarray):
        return registry.array_ref(value)
    if isinstance(value, tuple):
        return tuple(_encode_payload(v, registry) for v in value)
    if isinstance(value, list):
        return [_encode_payload(v, registry) for v in value]
    if isinstance(value, dict):
        return {k: _encode_payload(v, registry) for k, v in value.items()}
    return value


def _decode_payload(value, arena: WorkerArena):
    if isinstance(value, ArrayRef):
        return arena.view(value)
    if isinstance(value, tuple):
        return tuple(_decode_payload(v, arena) for v in value)
    if isinstance(value, list):
        return [_decode_payload(v, arena) for v in value]
    if isinstance(value, dict):
        return {k: _decode_payload(v, arena) for k, v in value.items()}
    return value


def _run_descriptor(
    desc: _TaskDescriptor,
    arena: WorkerArena,
    engine,
    task_types: dict[str, TaskType],
    worker_id: int,
) -> tuple[str, bool]:
    """Rebuild one task over shared memory and run the full ATM protocol."""
    task_type = task_types.get(desc.type_spec.name)
    if task_type is None:
        task_type = desc.type_spec.build()
        task_types[desc.type_spec.name] = task_type
    accesses = [
        DataAccess(arena.region(region_desc), AccessMode(mode_value))
        for region_desc, mode_value in desc.accesses
    ]
    task = Task(
        task_type=task_type,
        function=desc.function,
        accesses=accesses,
        args=_decode_payload(desc.args, arena),
        kwargs=_decode_payload(desc.kwargs, arena),
        task_id=desc.task_id,
    )
    task.creation_index = desc.creation_index
    task.label = f"{task_type.name}#{desc.task_id}"

    # Same eligibility gate as BaseExecutor._lookup, so per-worker stats
    # merge into the exact totals a single-process engine would have seen.
    if engine is not None and task_type.atm_eligible:
        decision = engine.task_ready(task, worker_id)
    else:
        decision = EXECUTE_DECISION
    executed = False
    if not decision.skips_execution:
        task.state = TaskState.RUNNING
        task.run()
        executed = True
        # Commit the writes to the cross-process version protocol *before*
        # reporting completion: once the parent releases a successor, any
        # worker hashing these bytes must observe the new version.  (The
        # SKIP path bumps through DataRegion.copy_from already.)
        for access in task.accesses:
            if access.writes:
                access.region.bump_version()
    if decision.atm_handled and engine is not None:
        engine.task_finished(task, decision, executed, worker_id)
    return decision.action.value, executed


def _worker_main(
    worker_id: int,
    task_queue,
    result_queue,
    version_name: str,
    version_capacity: int,
    version_lock,
    engine_spec: Optional[_EngineSpec],
    report_start: bool,
) -> None:
    """Worker process entry point: pull chunks until the shutdown pill.

    Each worker owns a private task queue, so a sync pill can never be
    stolen by a peer (which is what the pre-supervision control-queue
    parking protocol existed to prevent).  A chunk answers with exactly one
    ``("done", worker, chunk_id, results, failure)`` message: ``results``
    lists the tasks that completed, ``failure`` is ``None`` or
    ``(task_id, traceback)`` for the first task that raised — the parent
    resubmits whatever the worker did not reach.  ``report_start`` (set
    when ``task_timeout_s`` supervision is active) additionally announces
    ``("start", worker, chunk_id)`` so the parent can age a running chunk.
    """
    version_table = SharedVersionTable.attach(version_name, version_capacity, version_lock)
    arena = WorkerArena(version_table)
    engine = _build_worker_engine(engine_spec)
    task_types: dict[str, TaskType] = {}
    try:
        while True:
            message = task_queue.get()
            if message is None:
                break
            kind = message[0]
            if kind == "sync":
                delta = engine.snapshot(reset=True) if engine is not None else None
                result_queue.put(("sync", worker_id, delta))
                continue
            chunk_id = message[1]
            if report_start:
                result_queue.put(("start", worker_id, chunk_id))
            results: list[tuple[int, str, bool]] = []
            failure: Optional[tuple[int, str]] = None
            for desc in pickle.loads(message[2]):
                try:
                    action, executed = _run_descriptor(
                        desc, arena, engine, task_types, worker_id
                    )
                except BaseException:
                    failure = (desc.task_id, traceback.format_exc())
                    break
                results.append((desc.task_id, action, executed))
            result_queue.put(("done", worker_id, chunk_id, results, failure))
    finally:
        arena.close()
        version_table.close()


def _cleanup_pool(processes, task_queues, registry, version_table):
    """Idempotent teardown shared by close() and the GC finalizer."""
    for task_queue in task_queues:
        try:
            task_queue.put(None)
        except (OSError, ValueError):  # pragma: no cover - queue already closed
            pass
    deadline = time.perf_counter() + 5.0
    for process in processes:
        process.join(timeout=max(0.1, deadline - time.perf_counter()))
    for process in processes:
        if process.is_alive():  # a wedged task never takes the pill
            process.terminate()
            process.join(timeout=1.0)
    registry.close()
    version_table.close()


class ProcessExecutor(BaseExecutor):
    """Executor backed by worker processes over shared memory."""

    #: Slots in the shared write-version table (one per owning base buffer).
    VERSION_TABLE_CAPACITY = 8192
    #: Dispatch/queue latency allowance added to ``task_timeout_s`` before a
    #: started chunk is declared wedged.
    TIMEOUT_GRACE = 0.25

    def __init__(self, config: Optional[RuntimeConfig] = None, engine=None) -> None:
        super().__init__(config=config, engine=engine)
        if self.config.enable_tracing:
            raise RuntimeStateError(
                "ProcessExecutor does not support tracing: task bodies run in "
                "worker processes where CoreState spans cannot be recorded; "
                "use the threaded or simulated backend for Figure 7/8 traces"
            )
        self.num_workers = self.config.mp_workers or self.config.num_threads
        self.chunk_size = self.config.mp_chunk_size
        method = self.config.mp_start_method
        if method is None:
            method = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        self._ctx = multiprocessing.get_context(method)
        self._version_table = SharedVersionTable(
            capacity=self.VERSION_TABLE_CAPACITY, context=self._ctx
        )
        self._registry = SharedBufferRegistry(self._version_table)
        self._task_queues: list = []
        self._result_queue = self._ctx.Queue()
        self._processes: list = []
        # Validates replicability early when an engine was passed; the spec
        # itself is recomputed at spawn time (see _ensure_workers).
        self._engine_spec = self._make_engine_spec(engine)
        self._closed = False
        # Supervision bookkeeping (crash recovery, DESIGN.md §7).
        self._report_start = self.config.task_timeout_s is not None
        self._chunk_counter = 0
        self._next_worker = 0
        #: worker_id -> chunk_id -> descriptors the worker has not answered.
        self._outstanding: dict[int, dict[int, list[_TaskDescriptor]]] = {}
        #: worker_id -> (chunk_id, parent-side start timestamp).
        self._started: dict[int, tuple[int, float]] = {}
        #: task_id -> times the task was resubmitted after a worker loss.
        self._crash_resubmits: dict[int, int] = {}
        self._respawns = 0
        self._lost_deltas = 0
        # Registered up front so even a never-drained executor releases its
        # shared segments; _cleanup_pool sees later-spawned/respawned workers
        # through the (mutated in place) process/queue lists.
        self._finalizer: Optional[weakref.finalize] = weakref.finalize(
            self,
            _cleanup_pool,
            self._processes,
            self._task_queues,
            self._registry,
            self._version_table,
        )

    # -- pool management ---------------------------------------------------------
    @staticmethod
    def _make_engine_spec(engine) -> Optional[_EngineSpec]:
        return make_engine_spec(engine)

    def _spawn_worker(self, worker_id: int, replace: bool = False) -> None:
        task_queue = self._ctx.Queue()
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                worker_id,
                task_queue,
                self._result_queue,
                self._version_table.name,
                self._version_table.capacity,
                self._version_table.lock,
                self._engine_spec,
                self._report_start,
            ),
            daemon=True,
            name=f"repro-worker-{worker_id}",
        )
        process.start()
        if replace:
            self._task_queues[worker_id] = task_queue
            self._processes[worker_id] = process
        else:
            self._task_queues.append(task_queue)
            self._processes.append(process)
        self._outstanding[worker_id] = {}

    def _respawn_worker(self, worker_id: int) -> None:
        """Replace a dead (or wedged) worker with a fresh process in place."""
        process = self._processes[worker_id]
        if process.is_alive():
            process.terminate()
        process.join(timeout=5.0)
        old_queue = self._task_queues[worker_id]
        try:
            old_queue.cancel_join_thread()
            old_queue.close()
        except (OSError, ValueError):  # pragma: no cover - already closed
            pass
        self._started.pop(worker_id, None)
        self._spawn_worker(worker_id, replace=True)
        self._respawns += 1
        if self.engine is not None:
            # The worker's engine delta since the last barrier died with it:
            # those THT commits and stats are gone, not silently recovered.
            self._lost_deltas += 1
            self._result.lost_deltas += 1
            warnings.warn(
                f"worker {worker_id} died holding an un-merged ATM engine "
                f"delta; reuse statistics undercount "
                f"(RunResult.lost_deltas={self._result.lost_deltas})",
                RuntimeWarning,
                stacklevel=2,
            )

    def _ensure_workers(self) -> None:
        if self._closed:
            raise RuntimeStateError("ProcessExecutor already closed")
        if self._processes:
            return
        # Recomputed at spawn time, not construction: Session assigns its
        # assembled engine to a pre-built engine-less executor *after*
        # __init__, and a spec snapshotted there would silently run the
        # workers without ATM.
        self._engine_spec = self._make_engine_spec(self.engine)
        for worker_id in range(self.num_workers):
            self._spawn_worker(worker_id)

    def close(self) -> None:
        """Shut the worker pool down and release every shared segment."""
        if self._closed:
            return
        self._closed = True
        if self._finalizer is not None:
            self._finalizer()  # runs _cleanup_pool exactly once
            self._finalizer = None

    def __enter__(self) -> "ProcessExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- task encoding -----------------------------------------------------------
    def _describe_task(self, task: Task) -> _TaskDescriptor:
        accesses = tuple(
            (
                RegionDescriptor(
                    ref=self._registry.array_ref(access.region.array),
                    name=access.region.name,
                ),
                access.mode.value,
            )
            for access in task.accesses
        )
        return _TaskDescriptor(
            task_id=task.task_id,
            creation_index=task.creation_index,
            type_spec=_TaskTypeSpec.of(task.task_type),
            function=task.function,
            accesses=accesses,
            args=_encode_payload(task.args, self._registry),
            kwargs=_encode_payload(task.kwargs, self._registry),
        )

    # -- dispatch ----------------------------------------------------------------
    @property
    def _chunk_cap(self) -> int:
        """Effective dispatch chunk size (1 under per-task timeout, so the
        wedged task is identifiable)."""
        return 1 if self._report_start else self.chunk_size

    def _dispatch_chunk(self, chunk: list[_TaskDescriptor]) -> None:
        """Pickle one chunk and hand it to the next worker round-robin.

        Pickle synchronously: mp.Queue serialises in a feeder thread, which
        would swallow "unpicklable task function" errors and turn them into
        a silent drain hang.  This way they raise here, with the offending
        tasks named.
        """
        try:
            payload = pickle.dumps(chunk, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            labels = ", ".join(
                f"{d.type_spec.name}#{d.task_id}" for d in chunk
            )
            raise RuntimeStateError(
                f"cannot serialize task(s) [{labels}] for the process "
                f"backend: {exc}; task functions and plain arguments must "
                "be picklable (module-level functions, no lambdas/closures)"
            ) from exc
        chunk_id = self._chunk_counter
        self._chunk_counter += 1
        worker_id = self._next_worker
        self._next_worker = (worker_id + 1) % len(self._processes)
        self._outstanding[worker_id][chunk_id] = chunk
        self._task_queues[worker_id].put(("tasks", chunk_id, payload))

    def _reclaim_worker(
        self, worker_id: int
    ) -> tuple[list[_TaskDescriptor], list[_TaskDescriptor]]:
        """Take back every descriptor a dead/wedged worker still holds.

        Returns ``(executing, queued)``: the chunk the worker was plausibly
        running when it died (the start-reported chunk when available, else
        the oldest outstanding one) versus chunks merely sitting in its
        queue.  Only the former is charged against the crash-resubmission
        budget — a queued task never ran, so its loss says nothing about
        the task itself.
        """
        lost = self._outstanding.get(worker_id, {})
        self._outstanding[worker_id] = {}
        if not lost:
            return [], []
        started = self._started.get(worker_id)
        executing_id = started[0] if started and started[0] in lost else min(lost)
        executing = lost.pop(executing_id)
        queued: list[_TaskDescriptor] = []
        for chunk_id in sorted(lost):
            queued.extend(lost[chunk_id])
        return executing, queued

    def _requeue(self, descriptors: list[_TaskDescriptor]) -> None:
        """Re-dispatch descriptors without charging any retry budget."""
        cap = self._chunk_cap
        for start in range(0, len(descriptors), cap):
            self._dispatch_chunk(descriptors[start:start + cap])

    def _resubmit_lost(
        self,
        descriptors: list[_TaskDescriptor],
        inflight: dict[int, Task],
        graph: TaskDependenceGraph,
        reason: str,
        worker_name: str,
    ) -> None:
        """Round-robin failover for chunks lost to a worker death.

        A single loss only triggers resubmission; a task whose resubmissions
        keep losing workers is poison and goes through terminal supervision
        (``WorkerLostError``) instead of crashing the pool forever.
        """
        supervisor = self._supervisor
        budget = max(1, supervisor.max_retries)
        retry: list[_TaskDescriptor] = []
        for desc in descriptors:
            count = self._crash_resubmits.get(desc.task_id, 0) + 1
            self._crash_resubmits[desc.task_id] = count
            if count <= budget:
                retry.append(desc)
                continue
            task = inflight.pop(desc.task_id)
            self._task_failed(
                task,
                graph,
                EXECUTE_DECISION,
                WorkerLostError,
                f"{reason} (task resubmitted {count - 1}x before)",
                None,
                worker=worker_name,
            )
        self._requeue(retry)

    # -- drain ---------------------------------------------------------------------
    def drain(self, graph: TaskDependenceGraph) -> RunResult:
        if self._closed:
            raise RuntimeStateError("ProcessExecutor already closed")
        if graph.all_finished:
            self._finalize_result()
            return self._result
        self._ensure_workers()
        supervisor = self._fresh_supervisor()
        refreshed = self._registry.copy_in()
        t0 = time.perf_counter()
        deadline = supervisor.deadline()
        inflight: dict[int, Task] = {}
        written_slots: set[int] = set()
        dispatched = 0
        chunks_before = self._chunk_counter
        # With a per-task timeout the offender must be identifiable, so
        # dispatch degrades to one task per chunk (see module docstring).
        chunk_cap = self._chunk_cap

        def dispatch_ready() -> None:
            nonlocal dispatched
            chunk: list[_TaskDescriptor] = []
            while True:
                task = self.scheduler.next_task(0)
                if task is None:
                    break
                chunk.append(self._describe_task(task))
                inflight[task.task_id] = task
                dispatched += 1
                for access in task.accesses:
                    if access.writes:
                        written_slots.add(
                            self._registry.entry_for_array(access.region.array).slot
                        )
                if len(chunk) >= chunk_cap:
                    self._dispatch_chunk(chunk)
                    chunk = []
            if chunk:
                self._dispatch_chunk(chunk)

        while not graph.all_finished:
            dispatch_ready()
            if not inflight:
                if graph.all_finished:
                    break
                raise RuntimeStateError(
                    "process executor starved: no ready tasks, none in flight, "
                    "but the graph is not finished (undeclared dependence?)"
                )
            message = self._next_result(deadline)
            kind = message[0]
            if kind == "crash":
                _, worker_id, exitcode = message
                executing, queued = self._reclaim_worker(worker_id)
                worker_name = self._processes[worker_id].name
                self._respawn_worker(worker_id)
                self._resubmit_lost(
                    executing,
                    inflight,
                    graph,
                    f"worker {worker_name} died (exitcode {exitcode}) "
                    "while the task was in flight",
                    worker_name,
                )
                self._requeue(queued)
                continue
            if kind == "wedged":
                _, worker_id, chunk_id, elapsed = message
                wedged = self._outstanding[worker_id].pop(chunk_id, [])
                # Whatever else sat in the dead worker's queue never started
                # executing: requeue all of it without charging retry budget.
                rest, queued = self._reclaim_worker(worker_id)
                innocent = rest + queued
                worker_name = self._processes[worker_id].name
                self._respawn_worker(worker_id)
                for desc in wedged:
                    task = inflight.pop(desc.task_id)
                    self._task_failed(
                        task,
                        graph,
                        EXECUTE_DECISION,
                        TaskTimeoutError,
                        supervisor.timeout_reason(elapsed)
                        + f"; worker {worker_name} was killed and respawned",
                        None,
                        worker=worker_name,
                    )
                self._requeue(innocent)
                continue
            if kind == "start":
                _, worker_id, chunk_id = message
                self._started[worker_id] = (chunk_id, time.perf_counter())
                continue
            if kind != "done":  # pragma: no cover - defensive
                raise RuntimeStateError(f"unexpected worker message: {kind!r}")
            _, worker_id, chunk_id, results, failure = message
            descriptors = self._outstanding[worker_id].pop(chunk_id, None)
            started = self._started.get(worker_id)
            if started is not None and started[0] == chunk_id:
                self._started.pop(worker_id, None)
            if descriptors is None:
                # Stale answer for a chunk this drain already reclaimed.
                continue
            for task_id, action_value, executed in results:
                task = inflight.pop(task_id)
                decision = ATMDecision(action=ATMAction(action_value))
                self._account(decision)
                final_state = TaskState.FINISHED if executed else TaskState.MEMOIZED
                graph.complete_task(task, final_state)
            if failure is not None:
                failed_id, trace = failure
                done_ids = {r[0] for r in results}
                remaining = [
                    d for d in descriptors
                    if d.task_id not in done_ids and d.task_id != failed_id
                ]
                task = inflight[failed_id]
                backoff = supervisor.count_attempt(task)
                if backoff is not None:
                    time.sleep(backoff)
                    remaining.extend(
                        d for d in descriptors if d.task_id == failed_id
                    )
                else:
                    inflight.pop(failed_id)
                    self._task_failed(
                        task,
                        graph,
                        EXECUTE_DECISION,
                        TaskFailedError,
                        f"worker {worker_id} failed on task {failed_id}:\n{trace}",
                        None,
                        worker=f"repro-worker-{worker_id}",
                    )
                for start in range(0, len(remaining), chunk_cap):
                    self._dispatch_chunk(remaining[start:start + chunk_cap])

        elapsed = time.perf_counter() - t0
        copied_back = self._registry.copy_out(written_slots)
        if self.engine is not None:
            self._merge_worker_engines(deadline)
        self._result.elapsed += elapsed
        backend = self._result.extra.setdefault(
            "process_backend",
            {"workers": self.num_workers, "dispatched": 0, "chunks": 0,
             "copyin_refreshed": 0, "copyout_buffers": 0,
             "respawns": 0, "lost_deltas": 0},
        )
        backend["dispatched"] += dispatched
        backend["chunks"] += self._chunk_counter - chunks_before
        backend["copyin_refreshed"] += refreshed
        backend["copyout_buffers"] += copied_back
        backend["respawns"] = self._respawns
        backend["lost_deltas"] = self._lost_deltas
        self._finalize_result()
        return self._result

    def _next_result(self, deadline: float):
        """Blocking result fetch with liveness, wedge and deadline checks.

        Returns the next worker message, or a synthesised ``("crash",
        worker_id, exitcode)`` / ``("wedged", worker_id, chunk_id,
        elapsed)`` message when supervision detects a dead worker or an
        over-budget chunk.
        """
        while True:
            for worker_id, process in enumerate(self._processes):
                if not process.is_alive():
                    return ("crash", worker_id, process.exitcode)
            if self._report_start:
                now = time.perf_counter()
                budget = self._supervisor.task_timeout_s + self.TIMEOUT_GRACE
                for worker_id, (chunk_id, t_start) in self._started.items():
                    if now - t_start > budget:
                        return ("wedged", worker_id, chunk_id, now - t_start)
            try:
                return self._result_queue.get(timeout=POLL_INTERVAL)
            except queue_module.Empty:
                if time.perf_counter() > deadline:
                    raise self._supervisor.drain_timeout("process drain") from None

    def _merge_worker_engines(self, deadline: float) -> None:
        """Barrier: collect one delta per worker and fold it into the engine."""
        for task_queue in self._task_queues:
            task_queue.put(("sync",))
        synced: set[int] = set()
        while len(synced) < len(self._processes):
            message = self._next_result(deadline)
            kind = message[0]
            if kind == "crash":
                # The worker died between its last chunk and the barrier:
                # its delta is lost; the respawned replacement answers the
                # re-sent sync with an empty one.
                _, worker_id, _exitcode = message
                self._respawn_worker(worker_id)
                self._task_queues[worker_id].put(("sync",))
                continue
            if kind != "sync":
                # Stale start/done chatter from a reclaimed chunk.
                continue
            _, worker_id, delta = message
            if delta is not None:
                self.engine.merge(delta)
            synced.add(worker_id)
