"""Network-transport execution backend (DESIGN.md §4.5).

:class:`NetworkExecutor` drives remote workers over the length-prefixed
frame protocol of :mod:`repro.runtime.net_wire`: the parent keeps the task
dependence graph, the scheduler and the reference ATM engine; workers — in
the same process behind :class:`~repro.runtime.net_transport.LoopbackEndpoint`
socketpairs, or on other hosts behind ``scripts/net_worker.py`` TCP daemons —
rebuild task chunks from shipped byte buffers, run the full ATM protocol
against per-worker engine replicas, and ship written region bytes back.

The structural differences from the process backend (§4.3), which this
executor otherwise mirrors deliberately:

* **No shared memory.**  Every dispatch serializes the byte spans a chunk
  touches; every completion carries the written bytes home, applied to the
  parent arrays *before* successors are released.  With per-endpoint data
  residency (``RuntimeConfig.net_residency``, default on) dispatch cost is
  proportional to *stale* data rather than touched data: the parent's
  :class:`~repro.runtime.residency.ResidencyTable` tracks which buffer
  spans each endpoint already holds at which write-version, chunks ship
  ``data=None`` cached references for current spans, and the placement
  layer routes ready chunks to the endpoint holding the most of their
  input bytes (same-key twins are additionally pinned to one endpoint by
  an ATM-key affinity route, which makes cross-chunk reuse deterministic).
  Cold buffers fall back to a round-robin cursor over the *fixed* endpoint
  pool — the cursor skips failed endpoints instead of re-indexing a
  shrunken live list, so placement stays deterministic across failover.
  See PERFORMANCE.md ("Network backend dispatch overhead" and
  "Stale-bytes dispatch").
* **Failure is expected.**  Per-chunk acks prove receipt, heartbeat
  timeouts (``RuntimeConfig.net_timeout_s``) detect dead or wedged
  endpoints, and the unfinished chunks of a failed endpoint are resubmitted
  to the surviving ones — the failed endpoint stays excluded.  A task can
  be resubmitted at most ``net_max_retries`` times; exhausting that budget,
  losing every endpoint, or exceeding the drain deadline raises
  :class:`~repro.common.exceptions.NetworkDrainError` instead of hanging.
  Resubmission is safe by construction: a dispatched task's input bytes
  cannot change until its own completion (dependence exclusivity), and
  writes are only applied from the first accepted result — messages from
  failed endpoints are dropped.
* **ATM deltas are best-effort.**  Live endpoints merge their engine deltas
  at the drain barrier exactly like process workers; a dead endpoint's
  unmerged delta is lost (reuse statistics, never correctness — its
  unacknowledged tasks were re-run elsewhere).  Every loss is surfaced on
  ``RunResult.lost_deltas`` and warned about, never silent.
"""

from __future__ import annotations

import queue as queue_module
import time
import warnings
import weakref
from collections import OrderedDict
from typing import Optional, Sequence

import numpy as np

from repro.common.config import RuntimeConfig
from repro.common.exceptions import (
    NetworkDrainError,
    NetworkTransportError,
    RuntimeStateError,
    TaskFailedError,
    TaskTimeoutError,
    WorkerLostError,
)
from repro.runtime.atm_protocol import ATMAction, ATMDecision
from repro.runtime.executor import BaseExecutor, RunResult
from repro.runtime.graph import TaskDependenceGraph
from repro.runtime.mp_executor import _TaskTypeSpec, make_engine_spec
from repro.runtime.supervision import POLL_INTERVAL, dump_stacks
from repro.runtime.net_transport import (
    SocketEndpoint,
    TRANSPORT_ERROR,
    parse_endpoints,
)
from repro.runtime.net_wire import (
    ChunkEncoder,
    NetBuffer,
    NetChunk,
    NetTaskDescriptor,
    PROTOCOL_VERSION,
    encode_frame,
    span_bytes,
)
from repro.runtime.data import _base_buffer, region_versions
from repro.runtime.residency import ResidencyTable
from repro.runtime.task import Task, TaskState

__all__ = ["NetworkExecutor"]


class _ChunkState:
    """Parent-side record of one dispatched, not-yet-completed chunk."""

    __slots__ = ("chunk_id", "tasks", "endpoint", "sent_at", "dispatch_gens")

    def __init__(
        self,
        chunk_id: int,
        tasks: list[Task],
        endpoint: SocketEndpoint,
        dispatch_gens: Optional[dict[int, int]] = None,
    ) -> None:
        self.chunk_id = chunk_id
        self.tasks = tasks
        self.endpoint = endpoint
        self.sent_at = time.perf_counter()
        #: ``buffer_id -> residency generation`` at dispatch time; the
        #: write-commit path upgrades the writer's residency entry only if
        #: its generation is still the one this chunk was encoded against
        #: (a re-shipped backing does not contain the in-flight writes).
        self.dispatch_gens = dispatch_gens or {}


class _EndpointState:
    """Liveness bookkeeping the executor keeps per endpoint."""

    __slots__ = ("outstanding", "last_heard", "last_ping", "work_since_sync")

    def __init__(self) -> None:
        self.outstanding: dict[int, _ChunkState] = {}
        self.last_heard = time.perf_counter()
        self.last_ping = 0.0
        #: True once a chunk was dispatched after the last merged delta:
        #: losing this endpoint then means losing ATM state (reuse
        #: statistics), which drain() reports as ``lost_deltas``.
        self.work_since_sync = False


def _close_endpoints(endpoints: list) -> None:
    """Idempotent teardown shared by close() and the GC finalizer."""
    for endpoint in endpoints:
        try:
            endpoint.send(("shutdown",))
        except Exception:
            pass
        try:
            endpoint.close()
        except Exception:  # pragma: no cover - defensive
            pass


class NetworkExecutor(BaseExecutor):
    """Executor backed by workers behind a message transport."""

    #: Bound on the ATM-key -> endpoint affinity routes kept for twin
    #: placement (LRU); a placement hint only, never correctness.
    MAX_KEY_ROUTES = 4096

    def __init__(
        self,
        config: Optional[RuntimeConfig] = None,
        engine=None,
        endpoints: Optional[Sequence[SocketEndpoint]] = None,
    ) -> None:
        super().__init__(config=config, engine=engine)
        if self.config.enable_tracing:
            raise RuntimeStateError(
                "NetworkExecutor does not support tracing: task bodies run on "
                "remote workers where CoreState spans cannot be recorded; "
                "use the threaded or simulated backend for Figure 7/8 traces"
            )
        self.chunk_size = self.config.mp_chunk_size
        self.timeout = self.config.net_timeout_s
        self.max_retries = self.config.net_max_retries
        #: Dispatch/queue latency allowance added to the per-chunk task
        #: budget before an endpoint is declared wedged (``task_timeout_s``
        #: supervision); ``RuntimeConfig.net_timeout_grace_s``.
        self.timeout_grace = self.config.net_timeout_grace_s
        #: Per-drain wall-clock bound, from ``RuntimeConfig.drain_timeout_s``;
        #: instances may override it (the fault tests bound every scenario).
        self.drain_timeout = self.config.drain_timeout_s
        self._current_graph: Optional[TaskDependenceGraph] = None
        if endpoints is None:
            workers = self.config.mp_workers or self.config.num_threads
            endpoints = parse_endpoints(self.config.net_endpoints, workers)
        self._endpoints: list[SocketEndpoint] = list(endpoints)
        self._inbox: queue_module.Queue = queue_module.Queue()
        self._ep_state: dict[SocketEndpoint, _EndpointState] = {}
        self._chunk_counter = 0
        #: Round-robin cursor over live endpoints; persists across dispatch
        #: calls so wavefront apps (one ready chunk at a time) still spread
        #: over the whole pool instead of hammering endpoint 0.
        self._rr_cursor = 0
        self._retries: dict[int, int] = {}
        self._inflight: dict[int, Task] = {}
        self._failures: list[str] = []
        self._started = False
        self._closed = False
        #: Per-endpoint residency table (None = residency off: every chunk
        #: ships its full union spans and placement is pure round-robin).
        self._residency: Optional[ResidencyTable] = (
            ResidencyTable(self.config.net_residency_budget_bytes)
            if self.config.net_residency
            else None
        )
        #: ATM-key -> endpoint affinity (LRU-bounded): same-key twins that
        #: land in different chunks are routed to one endpoint so the
        #: second finds the first's THT commit without waiting for the
        #: drain-barrier delta merge.
        self._key_routes: "OrderedDict[tuple, SocketEndpoint]" = OrderedDict()
        self._chunks_by_endpoint: dict[str, int] = {}
        self._stats = {
            "endpoints": len(self._endpoints),
            "dispatched": 0,
            "chunks": 0,
            "resubmitted_tasks": 0,
            "payload_bytes": 0,
            "failed_endpoints": self._failures,
            "lost_deltas": 0,
            "chunks_by_endpoint": self._chunks_by_endpoint,
        }
        if self._residency is not None:
            # Aliases the table's live counters, like failed_endpoints.
            self._stats["residency"] = self._residency.stats
        self._finalizer: Optional[weakref.finalize] = weakref.finalize(
            self, _close_endpoints, self._endpoints
        )

    # -- pool management ---------------------------------------------------------
    def _live_endpoints(self) -> list[SocketEndpoint]:
        return [ep for ep in self._endpoints if not ep.failed]

    def _ensure_started(self) -> None:
        if self._closed:
            raise RuntimeStateError("NetworkExecutor already closed")
        if self._started:
            return
        self._started = True
        # The engine spec is computed at connection time, not construction:
        # Session assigns its assembled engine to a pre-built engine-less
        # executor *after* __init__, and a spec snapshotted there would
        # silently run the workers without ATM.
        engine_spec = make_engine_spec(self.engine)
        hello = (
            "hello",
            {
                "protocol": PROTOCOL_VERSION,
                "engine": engine_spec,
                "residency": self._residency is not None,
            },
        )
        for endpoint in self._endpoints:
            try:
                endpoint.start(self._inbox)
                endpoint.send(hello)
            except NetworkTransportError as exc:
                self._record_failure(endpoint, str(exc))
                continue
            self._ep_state[endpoint] = _EndpointState()
        if not self._live_endpoints():
            raise NetworkDrainError(
                "no network endpoint could be reached: "
                + "; ".join(self._failures)
            )

    def _record_failure(self, endpoint: SocketEndpoint, reason: str) -> None:
        endpoint.failed = True
        # A worker that hits a decode error (typically a task function that
        # does not resolve on its import path) reports it best-effort before
        # dying; the parent usually observes the broken pipe first, so fold
        # the report into the reason — it names the actual cause.
        report = endpoint.last_worker_error
        if report is None:
            time.sleep(0.05)  # give the receiver thread one beat to read it
            report = endpoint.last_worker_error
        if report is not None:
            reason = f"{reason} (worker reported: {report})"
        self._failures.append(f"{endpoint.name}: {reason}")
        # Never join threads here: this runs on the drain thread and a
        # wedged worker would stall failover for the whole join timeout.
        endpoint.close(wait=False)

    def close(self) -> None:
        """Shut every endpoint down (idempotent; also runs via GC finalizer)."""
        if self._closed:
            return
        self._closed = True
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None

    def __enter__(self) -> "NetworkExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- task encoding -----------------------------------------------------------
    def _describe_task(self, task: Task, encoder: ChunkEncoder) -> NetTaskDescriptor:
        accesses = tuple(
            (
                encoder.ref(access.region.array, access.region),
                access.mode.value,
                access.region.name,
            )
            for access in task.accesses
        )
        return NetTaskDescriptor(
            task_id=task.task_id,
            creation_index=task.creation_index,
            type_spec=_TaskTypeSpec.of(task.task_type),
            function=task.function,
            accesses=accesses,
            args=encoder.encode_payload(task.args),
            kwargs=encoder.encode_payload(task.kwargs),
        )

    def _encode_chunk(
        self, tasks: list[Task], endpoint: SocketEndpoint
    ) -> tuple[NetChunk, bytes, dict[int, int], list[tuple[int, int]]]:
        """Build and frame one chunk for ``endpoint``.

        Returns ``(chunk, framed_bytes, dispatch_gens, evicted)`` where
        ``dispatch_gens`` maps buffer ids to the residency generation the
        chunk was encoded against and ``evicted`` lists budget-evicted
        ``(buffer_id, generation)`` pairs to forward as an ``invalidate``.

        Framing happens synchronously (not in the receiver/sender machinery)
        for the same reason the process backend pickles synchronously: an
        unpicklable task function must raise with the offending tasks named,
        not wedge the drain.  With residency on, each touched buffer ships
        either its full union span (stale or unknown on this endpoint) or a
        ``data=None`` cached reference (current) — the stale-bytes dispatch.
        """
        encoder = ChunkEncoder()
        descriptors = tuple(self._describe_task(task, encoder) for task in tasks)
        self._chunk_counter += 1
        dispatch_gens: dict[int, int] = {}
        evicted: list[tuple[int, int]] = []
        residency = self._residency
        if residency is None:
            buffers = encoder.buffers()
        else:
            protect_tick = residency.next_tick()
            encoded: list[NetBuffer] = []
            for buffer_id, (base, start, end) in encoder.spans().items():
                version = region_versions.version_of(base)
                entry = residency.lookup(endpoint, buffer_id, start, end, version)
                if entry is not None:
                    encoded.append(
                        NetBuffer(buffer_id, entry.start, None, entry.generation)
                    )
                    dispatch_gens[buffer_id] = entry.generation
                else:
                    generation = residency.record(
                        endpoint, buffer_id, start, end, version
                    )
                    encoded.append(
                        NetBuffer(
                            buffer_id, start, span_bytes(base, start, end), generation
                        )
                    )
                    dispatch_gens[buffer_id] = generation
            evicted = residency.evict_over_budget(endpoint, protect_tick)
            buffers = tuple(encoded)
        chunk = NetChunk(
            chunk_id=self._chunk_counter,
            buffers=buffers,
            tasks=descriptors,
        )
        try:
            raw = encode_frame(("chunk", chunk))
        except Exception as exc:
            if residency is not None:
                # The recorded entries describe bytes that never shipped.
                residency.drop_endpoint(endpoint)
            labels = ", ".join(f"{t.task_type.name}#{t.task_id}" for t in tasks)
            raise RuntimeStateError(
                f"cannot serialize task(s) [{labels}] for the network "
                f"backend: {exc}; task functions and plain arguments must "
                "be picklable (module-level functions, no lambdas/closures)"
            ) from exc
        return chunk, raw, dispatch_gens, evicted

    # -- dispatch ----------------------------------------------------------------
    def _send_chunk(self, tasks: list[Task], endpoint: SocketEndpoint) -> bool:
        """Dispatch one chunk; returns False when the endpoint failed."""
        chunk, raw, dispatch_gens, evicted = self._encode_chunk(tasks, endpoint)
        try:
            endpoint.send_bytes(raw)
            if evicted:
                # After the chunk: socket FIFO order guarantees the worker
                # processes every dispatch referencing the evicted
                # generations before it drops them.
                endpoint.send(("invalidate", tuple(evicted)))
        except NetworkTransportError as exc:
            self._fail_endpoint(endpoint, str(exc))
            return False
        state = self._ep_state[endpoint]
        chunk_state = _ChunkState(chunk.chunk_id, tasks, endpoint, dispatch_gens)
        state.outstanding[chunk.chunk_id] = chunk_state
        # Dispatch restarts the endpoint's silence clock: an endpoint that
        # was legitimately idle (nothing outstanding) must get a full
        # timeout window to answer freshly (re)submitted work.
        state.last_heard = max(state.last_heard, chunk_state.sent_at)
        state.work_since_sync = True
        self._stats["chunks"] += 1
        self._stats["payload_bytes"] += len(raw)
        self._chunks_by_endpoint[endpoint.name] = (
            self._chunks_by_endpoint.get(endpoint.name, 0) + 1
        )
        return True

    def _distribute(self, tasks: list[Task]) -> None:
        """Chunk ``tasks`` over the live endpoints (locality-aware)."""
        pending = list(tasks)
        while pending:
            live = self._live_endpoints()
            if not live:
                raise NetworkDrainError(
                    "all network endpoints failed: " + "; ".join(self._failures)
                )
            chunk_tasks = pending[: self.chunk_size]
            endpoint = self._place(chunk_tasks, live)
            if self._send_chunk(chunk_tasks, endpoint):
                pending = pending[self.chunk_size:]
            # On failure the loop retries the same tasks on the next live
            # endpoint (the failed one is excluded by _live_endpoints).

    # -- placement ---------------------------------------------------------------
    def _place(
        self, tasks: list[Task], live: list[SocketEndpoint]
    ) -> SocketEndpoint:
        """Pick the endpoint for one ready chunk.

        Scoring order (first hit wins), pure locality by design so twin
        routing stays deterministic under completion/dispatch races:

        1. **Key affinity** — most-voted live endpoint among the recorded
           routes of the chunk's ATM keys (ties break in pool order);
        2. **Residency bytes** — the endpoint whose current residency
           entries cover the most of the chunk's touched bytes;
        3. **Cold round-robin** — a cursor over the *fixed* endpoint pool
           that skips failed endpoints, so failover never re-biases
           placement of unrelated work.
        """
        keys: tuple = ()
        endpoint: Optional[SocketEndpoint] = None
        if len(live) == 1:
            endpoint = live[0]
        else:
            keys = self._route_keys(tasks)
            if keys:
                votes: dict[SocketEndpoint, int] = {}
                for key in keys:
                    routed = self._key_routes.get(key)
                    if routed is not None and not routed.failed:
                        votes[routed] = votes.get(routed, 0) + 1
                if votes:
                    endpoint = max(live, key=lambda ep: votes.get(ep, 0))
                    if votes.get(endpoint, 0) == 0:  # pragma: no cover
                        endpoint = None
            if endpoint is None and self._residency is not None:
                wanted = self._wanted_spans(tasks)
                best_score = 0
                for candidate in live:
                    score = self._residency.score(candidate, wanted)
                    if score > best_score:
                        endpoint, best_score = candidate, score
            if endpoint is None:
                endpoint = self._next_cold_endpoint(live)
        for key in keys:
            self._key_routes[key] = endpoint
            self._key_routes.move_to_end(key)
        while len(self._key_routes) > self.MAX_KEY_ROUTES:
            self._key_routes.popitem(last=False)
        return endpoint

    def _route_keys(self, tasks: list[Task]) -> tuple:
        """ATM keys of the chunk's memoizable tasks (affinity routing).

        Computed with the parent engine's own key generator and sampling
        policy — identical inputs at identical policy state yield identical
        keys, which is exactly the twin-coalescing property placement
        needs.  The keygen's version-token caches make repeats cheap.
        Routing is a hint: any failure to compute a key just skips it.
        """
        engine = self.engine
        if engine is None or self._residency is None:
            return ()
        keygen = getattr(engine, "keygen", None)
        policy = getattr(engine, "policy", None)
        if keygen is None:
            return ()
        keys = []
        for task in tasks:
            if not task.task_type.atm_eligible:
                continue
            try:
                p = policy.sampling_fraction(task) if policy is not None else 1.0
                key = keygen.compute(task, p)
            except Exception:  # pragma: no cover - defensive
                continue
            keys.append((task.task_type.name, key.value, key.p))
        return tuple(keys)

    def _wanted_spans(self, tasks: list[Task]) -> list[tuple[int, int, int, int]]:
        """Merged ``(buffer_id, start, end, version)`` spans a chunk touches."""
        spans: dict[int, list[int]] = {}
        for task in tasks:
            for access in task.accesses:
                region = access.region
                start, end = region.byte_interval
                merged = spans.get(region.base_id)
                if merged is None:
                    base = _base_buffer(region.array)
                    spans[region.base_id] = [
                        start, end, region_versions.version_of(base)
                    ]
                else:
                    merged[0] = min(merged[0], start)
                    merged[1] = max(merged[1], end)
        return [
            (buffer_id, start, end, version)
            for buffer_id, (start, end, version) in spans.items()
        ]

    def _next_cold_endpoint(self, live: list[SocketEndpoint]) -> SocketEndpoint:
        """Advance the round-robin cursor over the *fixed* endpoint pool.

        Indexing the full pool and skipping failed endpoints keeps the
        assignment sequence of the survivors stable when an endpoint dies
        mid-drain; the old ``live[cursor % len(live)]`` re-biased toward
        low-index endpoints every time ``live`` shrank.
        """
        pool = self._endpoints
        for _ in range(len(pool)):
            endpoint = pool[self._rr_cursor % len(pool)]
            self._rr_cursor += 1
            if not endpoint.failed:
                return endpoint
        return live[0]  # pragma: no cover - live is non-empty by contract

    def _dispatch_ready(self) -> None:
        ready: list[Task] = []
        while True:
            task = self.scheduler.next_task(0)
            if task is None:
                break
            ready.append(task)
            self._inflight[task.task_id] = task
        if ready:
            self._stats["dispatched"] += len(ready)
            self._distribute(ready)

    # -- failure handling --------------------------------------------------------
    def _task_terminal(self, task: Task, error, reason: str, worker: str) -> None:
        """Terminal supervision for one task (network flavour).

        Quarantine mode fails the task in the graph, cancels its dependent
        subgraph and keeps draining; abort mode raises
        :class:`NetworkDrainError` (the taxonomy's transport specialisation)
        carrying the structured failure report.
        """
        supervisor = self._supervisor
        graph = self._current_graph
        self._inflight.pop(task.task_id, None)
        if supervisor.quarantine and graph is not None:
            cancelled = supervisor.quarantine_task(
                graph, task, error, reason, worker=worker
            )
            self._result.tasks_failed += 1
            self._result.tasks_cancelled += len(cancelled)
            return
        failure = supervisor.record_failure(task, error, reason, worker=worker)
        raise NetworkDrainError(
            f"drain aborted: task {failure.label} failed after "
            f"{failure.attempts} attempt(s): {failure.reason}",
            supervisor.failures,
        )

    def _fail_endpoint(
        self,
        endpoint: SocketEndpoint,
        reason: str,
        timeout_chunk: Optional[int] = None,
    ) -> None:
        """Mark an endpoint dead and resubmit its unfinished work elsewhere.

        ``timeout_chunk`` names the chunk whose task budget expired when the
        failure is a wedge detection — its tasks are reported as
        ``TaskTimeoutError`` (rather than ``WorkerLostError``) once their
        resubmission budget runs out.
        """
        if endpoint.failed:
            return
        self._record_failure(endpoint, reason)
        # Residency died with the endpoint's process/connection: forget its
        # entries (resubmission to survivors must re-ship full bytes) and
        # the affinity routes pointing at it.
        if self._residency is not None:
            self._residency.drop_endpoint(endpoint)
        if self._key_routes:
            for key in [k for k, ep in self._key_routes.items() if ep is endpoint]:
                del self._key_routes[key]
        state = self._ep_state.pop(endpoint, None)
        if state is None:
            return
        if self.engine is not None and state.work_since_sync:
            # Its engine replica held un-merged ATM state (reuse statistics,
            # never result bytes — unacknowledged tasks re-run elsewhere).
            self._stats["lost_deltas"] += 1
            self._result.lost_deltas += 1
            warnings.warn(
                f"endpoint {endpoint.name} died holding an un-merged ATM "
                f"engine delta; reuse statistics undercount "
                f"(RunResult.lost_deltas={self._result.lost_deltas})",
                RuntimeWarning,
                stacklevel=2,
            )
        orphans: list[tuple[Task, bool]] = []
        for chunk_id, chunk_state in state.outstanding.items():
            timed_out = chunk_id == timeout_chunk
            for task in chunk_state.tasks:
                if task.task_id in self._inflight:
                    orphans.append((task, timed_out))
        if not orphans:
            return
        survivors: list[Task] = []
        for task, timed_out in orphans:
            count = self._retries.get(task.task_id, 0) + 1
            self._retries[task.task_id] = count
            if count <= self.max_retries:
                survivors.append(task)
                continue
            self._task_terminal(
                task,
                TaskTimeoutError if timed_out else WorkerLostError,
                f"exceeded net_max_retries={self.max_retries} after endpoint "
                "failures: " + "; ".join(self._failures),
                endpoint.name,
            )
        if survivors:
            self._stats["resubmitted_tasks"] += len(survivors)
            self._distribute(survivors)

    # -- drain -------------------------------------------------------------------
    def drain(self, graph: TaskDependenceGraph) -> RunResult:
        if self._closed:
            raise RuntimeStateError("NetworkExecutor already closed")
        if graph.all_finished:
            self._finalize_result()
            return self._result
        self._ensure_started()
        self._fresh_supervisor()
        self._current_graph = graph
        t0 = time.perf_counter()
        deadline = t0 + self.drain_timeout
        try:
            while not graph.all_finished:
                self._dispatch_ready()
                if not self._inflight:
                    if graph.all_finished:
                        break
                    raise RuntimeStateError(
                        "network executor starved: no ready tasks, none in "
                        "flight, but the graph is not finished (undeclared "
                        "dependence?)"
                    )
                self._pump(graph, deadline)
        finally:
            self._current_graph = None
        elapsed = time.perf_counter() - t0
        if self.engine is not None:
            self._sync_engines(deadline)
        self._result.elapsed += elapsed
        # _stats["failed_endpoints"] aliases self._failures, so the extra
        # dict stays live across drains without re-assignment.
        self._result.extra.setdefault("network_backend", self._stats)
        self._finalize_result()
        return self._result

    def _pump(self, graph: TaskDependenceGraph, deadline: float) -> None:
        """Handle one inbox message, or run the liveness checks on idle."""
        try:
            endpoint, message = self._inbox.get(timeout=POLL_INTERVAL)
        except queue_module.Empty:
            self._check_liveness(deadline)
            return
        if endpoint.failed:
            return  # stale traffic from an endpoint already declared dead
        kind = message[0]
        if kind == TRANSPORT_ERROR:
            self._fail_endpoint(endpoint, message[1])
            return
        state = self._ep_state.get(endpoint)
        if state is None:  # pragma: no cover - defensive
            return
        state.last_heard = time.perf_counter()
        if kind == "ack":
            # Acks feed the silence clock (already refreshed above): the
            # worker acks each chunk *before* executing it, so receipt
            # liveness is proven independently of task runtime.
            pass
        elif kind == "result":
            _, chunk_id, results = message
            chunk_state = state.outstanding.pop(chunk_id, None)
            for task_id, action_value, executed, writes in results:
                self._complete_task(
                    graph, task_id, action_value, executed, writes,
                    endpoint, chunk_state,
                )
            if chunk_state is not None and len(results) < len(chunk_state.tasks):
                # Partial result: the worker hit a task error and reports the
                # completed prefix first (so its writes are not lost), then
                # the error frame.  Keep the unfinished remainder outstanding
                # for the error handler to resubmit.
                done_ids = {r[0] for r in results}
                chunk_state.tasks = [
                    t for t in chunk_state.tasks if t.task_id not in done_ids
                ]
                state.outstanding[chunk_id] = chunk_state
        elif kind == "error":
            _, chunk_id, task_id, trace = message
            self._task_error(endpoint, state, chunk_id, task_id, trace)
        elif kind in ("hello_ack", "pong", "sync_result"):
            pass  # liveness already recorded; stray sync_result is stale
        else:
            self._fail_endpoint(endpoint, f"unexpected message kind {kind!r}")

    def _task_error(self, endpoint, state, chunk_id, task_id, trace) -> None:
        """A worker reported a task-body exception (worker itself is fine).

        Supervision decides: bounded retry with backoff, then quarantine or
        abort.  The rest of the chunk — dropped by the worker after the
        failure — is redistributed either way.
        """
        chunk_state = state.outstanding.pop(chunk_id, None) if chunk_id else None
        # The failed task body may have partially written into cached
        # backings before raising; the worker is alive but its residency can
        # no longer be trusted.  Forget it all — the next dispatch re-ships
        # full bytes, which replaces the worker-side backings.
        if self._residency is not None:
            self._residency.drop_endpoint(endpoint)
        task = self._inflight.get(task_id) if task_id is not None else None
        if task is None:
            # A chunk-less error report (decode failure) or a stale/duplicate
            # one: treat it as an endpoint failure like before.
            self._fail_endpoint(
                endpoint, f"worker error without a live task: {trace}"
            )
            return
        remaining = (
            [
                t for t in chunk_state.tasks
                if t.task_id != task_id and t.task_id in self._inflight
            ]
            if chunk_state is not None
            else []
        )
        reason = (
            f"network worker {endpoint.name} failed on task {task_id}:\n{trace}"
        )
        backoff = self._supervisor.count_attempt(task)
        if backoff is not None:
            time.sleep(backoff)
            self._stats["resubmitted_tasks"] += 1
            remaining.append(task)
        else:
            self._task_terminal(task, TaskFailedError, reason, endpoint.name)
        if remaining:
            self._distribute(remaining)

    def _complete_task(
        self,
        graph,
        task_id: int,
        action_value: str,
        executed: bool,
        writes,
        endpoint: Optional[SocketEndpoint] = None,
        chunk_state: Optional[_ChunkState] = None,
    ) -> None:
        task = self._inflight.pop(task_id, None)
        if task is None:
            return  # duplicate completion of a resubmitted task
        # Written bytes land in the parent arrays *before* complete_task
        # releases successors: anything scheduled next reads the new values
        # (and re-serializes them at its own dispatch).
        for index, raw in writes:
            region = task.accesses[index].region
            received = np.frombuffer(raw, dtype=region.array.dtype)
            np.copyto(
                region.array, received.reshape(region.array.shape), casting="no"
            )
        residency = self._residency
        # Snapshot the pre-commit versions: complete_task bumps every write
        # region, and the table's upgrade rule needs both sides of the bump.
        prev_versions = (
            [task.accesses[index].region.version for index, _ in writes]
            if residency is not None and writes
            else []
        )
        decision = ATMDecision(action=ATMAction(action_value))
        self._account(decision)
        final_state = TaskState.FINISHED if executed else TaskState.MEMOIZED
        graph.complete_task(task, final_state)
        if residency is not None and writes:
            self._commit_residency(task, writes, prev_versions, endpoint, chunk_state)

    def _commit_residency(
        self, task, writes, prev_versions, endpoint, chunk_state
    ) -> None:
        """Apply one task's committed writes to the residency table.

        The writer's own entry upgrades to the new version (its backing
        holds exactly the bytes it shipped home) when its generation still
        matches the dispatch-time one; overlapping entries elsewhere drop
        and get a worker-side ``invalidate`` so cache accounting follows.
        """
        invalidations: dict[SocketEndpoint, list[tuple[int, int]]] = {}
        dispatch_gens = chunk_state.dispatch_gens if chunk_state is not None else {}
        for (index, _), prev_version in zip(writes, prev_versions):
            region = task.accesses[index].region
            dropped = self._residency.note_write(
                endpoint,
                dispatch_gens.get(region.base_id),
                region.base_id,
                region.byte_interval,
                prev_version,
                region.version,
            )
            for drop_endpoint, buffer_id, generation in dropped:
                invalidations.setdefault(drop_endpoint, []).append(
                    (buffer_id, generation)
                )
        for drop_endpoint, pairs in invalidations.items():
            if drop_endpoint.failed:
                continue
            try:
                drop_endpoint.send(("invalidate", tuple(pairs)))
            except NetworkTransportError as exc:
                self._fail_endpoint(drop_endpoint, f"invalidate failed: {exc}")

    def _check_liveness(self, deadline: float) -> None:
        now = time.perf_counter()
        if now > deadline:
            reason = (
                f"network drain timed out after {self.drain_timeout}s with "
                f"{len(self._inflight)} task(s) outstanding"
            )
            dump_stacks(reason)
            raise NetworkDrainError(reason, self._supervisor.failures)
        task_budget = self._supervisor.task_timeout_s
        for endpoint in list(self._ep_state):
            state = self._ep_state.get(endpoint)
            if state is None or not state.outstanding:
                continue
            if task_budget is not None:
                # Wedge supervision: a chunk that has been out longer than
                # its tasks' combined budget means a task is stuck inside the
                # worker (which still heartbeats).  Fail the endpoint with
                # the chunk tagged so exhausted tasks surface as timeouts.
                for chunk_state in list(state.outstanding.values()):
                    age = now - chunk_state.sent_at
                    budget = (
                        task_budget * max(1, len(chunk_state.tasks))
                        + self.timeout_grace
                    )
                    if age > budget:
                        self._fail_endpoint(
                            endpoint,
                            f"chunk {chunk_state.chunk_id} exceeded its task "
                            f"budget ({age:.2f}s > {budget:.2f}s with "
                            f"task_timeout_s={task_budget}s)",
                            timeout_chunk=chunk_state.chunk_id,
                        )
                        break
                if endpoint.failed:
                    continue
            silent_for = now - state.last_heard
            if silent_for > self.timeout:
                self._fail_endpoint(
                    endpoint,
                    f"heartbeat timeout ({silent_for:.2f}s > "
                    f"net_timeout_s={self.timeout}s with work outstanding)",
                )
            elif silent_for > self.timeout / 2 and now - state.last_ping > self.timeout / 2:
                state.last_ping = now
                try:
                    endpoint.send(("ping",))
                except NetworkTransportError as exc:
                    self._fail_endpoint(endpoint, f"ping failed: {exc}")

    # -- ATM barrier -------------------------------------------------------------
    def _sync_engines(self, deadline: float) -> None:
        """Collect one engine delta per live endpoint and merge them.

        Best-effort by design: an endpoint that dies here loses its delta
        (reuse statistics), never result bytes — every task already
        completed through an accepted result message.
        """
        pending: set[SocketEndpoint] = set()
        for endpoint in self._live_endpoints():
            try:
                endpoint.send(("sync",))
                pending.add(endpoint)
            except NetworkTransportError as exc:
                self._fail_endpoint(endpoint, f"sync send failed: {exc}")
        sync_deadline = min(deadline, time.perf_counter() + self.timeout)
        while pending:
            if time.perf_counter() > sync_deadline:
                for endpoint in pending:
                    self._fail_endpoint(endpoint, "sync timed out")
                return
            try:
                endpoint, message = self._inbox.get(timeout=POLL_INTERVAL)
            except queue_module.Empty:
                continue
            kind = message[0]
            if kind == TRANSPORT_ERROR:
                if endpoint in pending:
                    pending.discard(endpoint)
                    self._fail_endpoint(endpoint, f"died during sync: {message[1]}")
                continue
            if kind == "sync_result" and endpoint in pending:
                pending.discard(endpoint)
                if message[1] is not None:
                    self.engine.merge(message[1])
                state = self._ep_state.get(endpoint)
                if state is not None:
                    state.work_since_sync = False
            # acks/pongs and stale results are ignored here: the graph is
            # finished, every task already completed.
