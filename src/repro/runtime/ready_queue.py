"""Ready queues.

When all dependences of a task are satisfied it is moved to the ready queue
(``RQ`` in the paper's Figure 1) from which idle worker threads pull work.
Three implementations are provided, all thread-safe:

* :class:`FIFOReadyQueue` — creation-order service, the Nanos++ default;
* :class:`LIFOReadyQueue` — depth-first service, better locality for some
  workloads;
* :class:`WorkStealingDeques` — one deque per worker with random stealing.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Optional, Sequence

import numpy as np

from repro.runtime.task import Task

__all__ = ["FIFOReadyQueue", "LIFOReadyQueue", "WorkStealingDeques", "ReadyQueueStats"]


class ReadyQueueStats:
    """Running statistics about ready-queue occupancy.

    Sampled occupancies feed Figure 8 (number of ready tasks over time).
    The invariant tests rely on ``total_pushes`` counting every task that
    ever entered the queue (batched pushes count each member) and
    ``total_pops`` every task handed to a worker, so after a full drain
    ``total_pushes == total_pops``.
    """

    def __init__(self) -> None:
        self.max_depth = 0
        self.total_pushes = 0
        self.total_pops = 0

    def on_push(self, depth: int) -> None:
        self.total_pushes += 1
        if depth > self.max_depth:
            self.max_depth = depth

    def on_push_many(self, count: int, depth: int) -> None:
        """Record ``count`` tasks entering at once; ``depth`` is the final
        occupancy (the maximum during a monotonic batch append)."""
        self.total_pushes += count
        if depth > self.max_depth:
            self.max_depth = depth

    def on_pop(self) -> None:
        self.total_pops += 1


class FIFOReadyQueue:
    """First-in-first-out ready queue protected by a single lock."""

    def __init__(self) -> None:
        self._queue: deque[Task] = deque()
        self._lock = threading.Lock()
        self.stats = ReadyQueueStats()

    def push(self, task: Task, worker_hint: Optional[int] = None) -> None:
        with self._lock:
            self._queue.append(task)
            self.stats.on_push(len(self._queue))

    def push_many(
        self,
        tasks: Sequence[Task],
        worker_hints: Optional[Sequence[int]] = None,
    ) -> None:
        """Append a whole batch under one lock acquisition (service order is
        identical to pushing one by one)."""
        if not tasks:
            return
        with self._lock:
            self._queue.extend(tasks)
            self.stats.on_push_many(len(tasks), len(self._queue))

    def pop(self, worker_id: int = 0) -> Optional[Task]:
        with self._lock:
            if not self._queue:
                return None
            self.stats.on_pop()
            return self._queue.popleft()

    def __len__(self) -> int:
        with self._lock:
            return len(self._queue)


class LIFOReadyQueue(FIFOReadyQueue):
    """Last-in-first-out variant (pops the most recently released task)."""

    def pop(self, worker_id: int = 0) -> Optional[Task]:
        with self._lock:
            if not self._queue:
                return None
            self.stats.on_pop()
            return self._queue.pop()


class WorkStealingDeques:
    """Per-worker deques with random-victim stealing.

    A worker pushes and pops from the tail of its own deque and steals from
    the head of a random victim when its own deque is empty.
    """

    def __init__(self, num_workers: int, seed: int = 0) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self._deques: list[deque[Task]] = [deque() for _ in range(num_workers)]
        self._locks = [threading.Lock() for _ in range(num_workers)]
        self._rng = np.random.default_rng(seed)
        self._rng_lock = threading.Lock()
        # Stats are kept *per deque* and only under the deque lock the
        # operation already holds (pushes and pops touch different locks, so
        # one shared counter object would either race or re-serialise the
        # whole structure on a global stats lock).  ``stats`` aggregates on
        # read: totals are exact after a drain; ``max_depth`` is the sum of
        # per-deque maxima — an upper bound on the true global maximum,
        # never exceeding total pushes (the same approximate character the
        # sampled global sums always had under concurrency).
        self._push_counts = [0] * num_workers
        self._pop_counts = [0] * num_workers
        self._depth_maxes = [0] * num_workers
        self._num_workers = num_workers

    @property
    def stats(self) -> ReadyQueueStats:
        """Aggregated snapshot of the per-deque counters."""
        snapshot = ReadyQueueStats()
        snapshot.total_pushes = sum(self._push_counts)
        snapshot.total_pops = sum(self._pop_counts)
        snapshot.max_depth = sum(self._depth_maxes)
        return snapshot

    def _record_push(self, target: int, count: int) -> None:
        """Update ``target``'s counters; caller holds ``_locks[target]``."""
        self._push_counts[target] += count
        depth = len(self._deques[target])
        if depth > self._depth_maxes[target]:
            self._depth_maxes[target] = depth

    def push(self, task: Task, worker_hint: Optional[int] = None) -> None:
        target = worker_hint if worker_hint is not None else 0
        target %= self._num_workers
        with self._locks[target]:
            self._deques[target].append(task)
            self._record_push(target, 1)

    def push_many(
        self,
        tasks: Sequence[Task],
        worker_hints: Optional[Sequence[int]] = None,
    ) -> None:
        """Distribute a batch to the hinted deques, one lock per target deque
        (placement is identical to pushing one by one with the same hints)."""
        if not tasks:
            return
        num_workers = self._num_workers
        grouped: dict[int, list[Task]] = {}
        for index, task in enumerate(tasks):
            hint = worker_hints[index] if worker_hints is not None else 0
            grouped.setdefault(hint % num_workers, []).append(task)
        for target, group in grouped.items():
            with self._locks[target]:
                self._deques[target].extend(group)
                self._record_push(target, len(group))

    def pop(self, worker_id: int = 0) -> Optional[Task]:
        worker_id %= self._num_workers
        with self._locks[worker_id]:
            if self._deques[worker_id]:
                self._pop_counts[worker_id] += 1
                return self._deques[worker_id].pop()
        # steal
        with self._rng_lock:
            order = self._rng.permutation(self._num_workers)
        for victim in order:
            victim = int(victim)
            if victim == worker_id:
                continue
            with self._locks[victim]:
                if self._deques[victim]:
                    self._pop_counts[victim] += 1
                    return self._deques[victim].popleft()
        return None

    def __len__(self) -> int:
        return sum(len(d) for d in self._deques)
