"""Per-endpoint data residency for the network backend (DESIGN.md §4.5).

The network backend has no shared memory, so before this module every chunk
dispatch shipped the full union byte span of every buffer it touched — even
when the receiving endpoint had *just* processed those exact bytes.  This
module adds the two halves of the stale-bytes protocol:

* :class:`ResidencyTable` — the **parent-side, authoritative** record of
  which byte span of which base buffer each endpoint currently holds, at
  which :mod:`repro.runtime.data` write-version, under which *generation*
  tag.  Dispatch consults it (:meth:`ResidencyTable.lookup`) and ships a
  ``data=None`` :class:`~repro.runtime.net_wire.NetBuffer` referencing the
  cached generation when the endpoint's copy is current, or records a fresh
  entry (:meth:`ResidencyTable.record`) and ships the bytes when it is not.

* :class:`WorkerBufferCache` — the **worker-side** store of shipped
  backings, keyed by buffer id.  The worker never reasons about versions:
  it trusts the parent and checks only the generation tag, so a cached
  dispatch that references a generation the worker does not hold is a
  protocol violation (:class:`~repro.common.exceptions.WireProtocolError`)
  that fails the endpoint and re-runs the work elsewhere — self-healing,
  never silently wrong.

Correctness invariant (what :meth:`ResidencyTable.note_write` preserves):
whenever an entry's ``version`` equals the current write-version of its
base buffer, then for every region inside the entry's span that is not the
target of an in-flight write, the worker's backing bytes equal the parent's
buffer bytes.  Version bumps outside the protocol (``copy_from``, another
backend's drain) simply make entries stale — staleness always re-ships,
so unknown writers degrade performance, never correctness.

The write-commit rules (one write of span ``w`` at generation ``g`` from
endpoint ``E``, bumping the base from ``prev`` to ``new``):

* an entry whose version is not ``prev`` was already stale — drop it when
  ``w`` overlaps its span (bookkeeping), otherwise leave it (harmless);
* ``E``'s own entry upgrades to ``new`` only when its generation still
  equals the generation recorded at the chunk's dispatch — a re-shipped
  backing does not contain the in-flight write's bytes;
* any other current entry upgrades when ``w`` is disjoint from its span
  (its bytes are untouched) and is dropped when ``w`` overlaps it.
"""

from __future__ import annotations

from typing import Iterable, Optional

__all__ = ["ResidencyEntry", "ResidencyTable", "CachedBuffer", "WorkerBufferCache"]


class ResidencyEntry:
    """One endpoint-resident byte span of one base buffer."""

    __slots__ = ("start", "end", "version", "generation", "tick")

    def __init__(
        self, start: int, end: int, version: int, generation: int, tick: int
    ) -> None:
        self.start = start
        self.end = end
        self.version = version
        self.generation = generation
        self.tick = tick

    @property
    def nbytes(self) -> int:
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResidencyEntry([{self.start}:{self.end}) v{self.version} "
            f"g{self.generation})"
        )


class ResidencyTable:
    """Parent-side map ``endpoint -> {buffer_id -> ResidencyEntry}``.

    Single-threaded by design: every caller runs on the executor's drain
    thread (dispatch, result handling and failover all do), so no lock is
    taken.  ``budget_bytes`` bounds the bytes *accounted* per endpoint;
    :meth:`evict_over_budget` returns the LRU ``(buffer_id, generation)``
    pairs the caller must forward to the worker as an ``invalidate``
    message, so worker memory tracks the parent's accounting.
    """

    def __init__(self, budget_bytes: int) -> None:
        self.budget_bytes = budget_bytes
        self._tables: dict[object, dict[int, ResidencyEntry]] = {}
        self._bytes: dict[object, int] = {}
        self._generation = 0
        self._tick = 0
        #: Live counters, aliased into the executor's stats dict.
        self.stats = {
            "hits": 0,
            "misses": 0,
            "bytes_saved": 0,
            "bytes_shipped": 0,
            "evictions": 0,
            "invalidations": 0,
            "write_upgrades": 0,
            "write_drops": 0,
        }

    # -- bookkeeping helpers -----------------------------------------------------
    def next_tick(self) -> int:
        """Advance and return the LRU clock (one tick per encoded chunk)."""
        self._tick += 1
        return self._tick

    def endpoints(self) -> list:
        return list(self._tables)

    def bytes_held(self, endpoint: object) -> int:
        return self._bytes.get(endpoint, 0)

    def entry(self, endpoint: object, buffer_id: int) -> Optional[ResidencyEntry]:
        return self._tables.get(endpoint, {}).get(buffer_id)

    # -- dispatch-side protocol --------------------------------------------------
    def lookup(
        self, endpoint: object, buffer_id: int, start: int, end: int, version: int
    ) -> Optional[ResidencyEntry]:
        """Current entry covering ``[start, end)`` at ``version``, or None.

        A hit means the endpoint's backing can serve the span without any
        bytes on the wire; the entry's LRU tick is refreshed.
        """
        entry = self._tables.get(endpoint, {}).get(buffer_id)
        if (
            entry is None
            or entry.version != version
            or entry.start > start
            or entry.end < end
        ):
            self.stats["misses"] += 1
            return None
        entry.tick = self.next_tick()
        self.stats["hits"] += 1
        self.stats["bytes_saved"] += end - start
        return entry

    def record(
        self, endpoint: object, buffer_id: int, start: int, end: int, version: int
    ) -> int:
        """Register a full ship of ``[start, end)``; returns its generation.

        Replaces any previous entry for the buffer on this endpoint — the
        worker's :class:`WorkerBufferCache` replaces its backing the same
        way when the shipped bytes arrive, keeping both sides in step.
        """
        self._generation += 1
        table = self._tables.setdefault(endpoint, {})
        old = table.get(buffer_id)
        held = self._bytes.get(endpoint, 0)
        if old is not None:
            held -= old.nbytes
        entry = ResidencyEntry(start, end, version, self._generation, self.next_tick())
        table[buffer_id] = entry
        self._bytes[endpoint] = held + entry.nbytes
        self.stats["bytes_shipped"] += entry.nbytes
        return entry.generation

    def evict_over_budget(
        self, endpoint: object, protect_tick: int
    ) -> list[tuple[int, int]]:
        """LRU-evict until the endpoint fits its budget.

        Entries touched at or after ``protect_tick`` (the chunk currently
        being encoded) are never evicted, so a chunk whose buffers alone
        exceed the budget still dispatches — the table simply runs hot.
        Returns ``(buffer_id, generation)`` pairs for the worker-side
        ``invalidate`` message.
        """
        table = self._tables.get(endpoint)
        if table is None or self._bytes.get(endpoint, 0) <= self.budget_bytes:
            return []
        victims = sorted(
            (
                (entry.tick, buffer_id, entry)
                for buffer_id, entry in table.items()
                if entry.tick < protect_tick
            ),
        )
        evicted: list[tuple[int, int]] = []
        held = self._bytes[endpoint]
        for _, buffer_id, entry in victims:
            if held <= self.budget_bytes:
                break
            del table[buffer_id]
            held -= entry.nbytes
            evicted.append((buffer_id, entry.generation))
        self._bytes[endpoint] = held
        self.stats["evictions"] += len(evicted)
        self.stats["invalidations"] += len(evicted)
        return evicted

    # -- write-commit protocol ---------------------------------------------------
    def note_write(
        self,
        writer: object,
        dispatch_generation: Optional[int],
        buffer_id: int,
        span: tuple[int, int],
        prev_version: int,
        new_version: int,
    ) -> list[tuple[object, int, int]]:
        """Commit one write of ``span`` (module docstring rules).

        ``dispatch_generation`` is the generation of the writer's entry at
        the time the writing chunk was dispatched (``None`` when unknown —
        e.g. a duplicate result — which conservatively skips the upgrade).
        Returns dropped entries as ``(endpoint, buffer_id, generation)``
        triples the caller forwards as worker ``invalidate`` messages.
        """
        start, end = span
        dropped: list[tuple[object, int, int]] = []
        for endpoint, table in self._tables.items():
            entry = table.get(buffer_id)
            if entry is None:
                continue
            overlaps = start < entry.end and entry.start < end
            if entry.version != prev_version:
                if overlaps:
                    self._drop_entry(endpoint, table, buffer_id, entry, dropped)
                continue
            if endpoint is writer and entry.generation == dispatch_generation:
                entry.version = new_version
                self.stats["write_upgrades"] += 1
            elif overlaps:
                self._drop_entry(endpoint, table, buffer_id, entry, dropped)
            else:
                entry.version = new_version
                self.stats["write_upgrades"] += 1
        return dropped

    def _drop_entry(self, endpoint, table, buffer_id, entry, dropped) -> None:
        del table[buffer_id]
        self._bytes[endpoint] = self._bytes.get(endpoint, 0) - entry.nbytes
        self.stats["write_drops"] += 1
        dropped.append((endpoint, buffer_id, entry.generation))

    # -- failure protocol --------------------------------------------------------
    def drop_endpoint(self, endpoint: object) -> None:
        """Forget everything an endpoint holds (failover / worker error).

        Called when the endpoint died (its cache is gone with it) or when a
        task body raised on it (a partial write may have corrupted cached
        backings; the next dispatch re-ships full bytes, which replaces the
        worker-side backing, so no worker round-trip is needed).
        """
        self._tables.pop(endpoint, None)
        self._bytes.pop(endpoint, None)

    # -- placement scoring -------------------------------------------------------
    def score(
        self,
        endpoint: object,
        wanted: Iterable[tuple[int, int, int, int]],
    ) -> int:
        """Resident-byte score: how many of ``wanted`` bytes are current.

        ``wanted`` holds ``(buffer_id, start, end, version)`` spans; each
        contributes the byte overlap with a current (version-matching)
        entry.  Pure read — no LRU touch, no stats.
        """
        table = self._tables.get(endpoint)
        if not table:
            return 0
        total = 0
        for buffer_id, start, end, version in wanted:
            entry = table.get(buffer_id)
            if entry is None or entry.version != version:
                continue
            overlap = min(end, entry.end) - max(start, entry.start)
            if overlap > 0:
                total += overlap
        return total


class CachedBuffer:
    """Worker-side record of one shipped backing."""

    __slots__ = ("backing", "start", "generation")

    def __init__(self, backing, start: int, generation: int) -> None:
        self.backing = backing
        self.start = start
        self.generation = generation


class WorkerBufferCache:
    """Worker-side buffer store; trusts the parent, checks generations.

    One instance per connection (:class:`~repro.runtime.net_transport.
    NetWorkerState`), populated by :class:`~repro.runtime.net_wire.
    ChunkArena` as full buffers arrive and consulted for ``data=None``
    dispatches.  The connection loop is strictly serial, so no locking.
    """

    def __init__(self) -> None:
        self._entries: dict[int, CachedBuffer] = {}

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def nbytes(self) -> int:
        return sum(entry.backing.nbytes for entry in self._entries.values())

    def get(self, buffer_id: int) -> Optional[CachedBuffer]:
        return self._entries.get(buffer_id)

    def put(self, buffer_id: int, backing, start: int, generation: int) -> None:
        self._entries[buffer_id] = CachedBuffer(backing, start, generation)

    def invalidate(self, pairs: Iterable[tuple[int, int]]) -> None:
        """Drop entries named by ``(buffer_id, generation)`` pairs.

        The generation guard makes invalidation idempotent and safe against
        reordering relative to re-ships: a newer backing under the same
        buffer id is never dropped by an invalidate aimed at its
        predecessor.
        """
        for buffer_id, generation in pairs:
            entry = self._entries.get(buffer_id)
            if entry is not None and entry.generation == generation:
                del self._entries[buffer_id]
