"""Protocol between the runtime's executors and a memoization engine.

The runtime does not depend on the ATM implementation: executors talk to any
object implementing :class:`MemoizationEngineProtocol`.  The ATM package
provides the real implementation (:class:`repro.atm.engine.ATMEngine`); tests
can plug in simple fakes.

The decision returned by ``task_ready`` tells the executor what to do with
the task and how many bytes the engine touched, so the discrete-event
simulator can charge hash and copy costs without knowing anything about the
THT internals.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol, runtime_checkable

from repro.runtime.task import Task

__all__ = [
    "ATMAction",
    "ATMDecision",
    "ATMCommitInfo",
    "MemoizationEngineProtocol",
    "EXECUTE_DECISION",
]


class ATMAction(enum.Enum):
    """What the executor must do with a ready task after the ATM lookup."""

    #: Run the task normally (THT and IKT miss, or ATM disabled for the task).
    EXECUTE = "execute"
    #: THT hit: the engine already copied the stored outputs; skip execution.
    SKIP = "skip"
    #: IKT hit: an identical task is in flight; do not execute, completion is
    #: deferred until the producer commits and its outputs are copied.
    DEFER = "defer"
    #: Dynamic-ATM training hit: execute the task anyway so the engine can
    #: measure the approximation error afterwards.
    EXECUTE_AND_TRAIN = "execute_and_train"


@dataclass
class ATMDecision:
    """Outcome of the ATM lookup performed when a task becomes ready."""

    action: ATMAction
    #: Bytes fed to the hash-key generator (0 when ATM skipped the task).
    hashed_bytes: int = 0
    #: Bytes copied from the THT into the task outputs (SKIP only).
    copied_bytes: int = 0
    #: Sampling fraction used for the key (diagnostics).
    p: float = 1.0
    #: Producer task a DEFER decision is waiting on.
    waiting_on: Optional[Task] = None
    #: True when the lookup reached the THT (i.e. the task type was eligible).
    atm_handled: bool = False
    #: Opaque engine payload carried through to ``task_finished``.
    payload: dict = field(default_factory=dict)

    @property
    def skips_execution(self) -> bool:
        return self.action in (ATMAction.SKIP, ATMAction.DEFER)


#: Decision used for tasks the ATM engine never sees (engine disabled or task
#: type not eligible).
EXECUTE_DECISION = ATMDecision(action=ATMAction.EXECUTE, atm_handled=False)


@dataclass
class ATMCommitInfo:
    """Costs incurred when a finished task is committed to the THT."""

    #: Bytes copied from the task outputs into the THT entry.
    stored_bytes: int = 0
    #: Bytes copied to satisfy postponed (IKT) consumers.
    forwarded_bytes: int = 0
    #: Number of deferred tasks completed by this commit.
    deferred_completed: int = 0


@runtime_checkable
class MemoizationEngineProtocol(Protocol):
    """Interface the executors expect from a memoization engine."""

    def task_ready(self, task: Task, worker_id: int = 0) -> ATMDecision:
        """Lookup performed right after a worker pulls ``task`` from the RQ."""
        ...

    def task_finished(
        self, task: Task, decision: ATMDecision, executed: bool, worker_id: int = 0
    ) -> ATMCommitInfo:
        """Commit/cleanup performed when the task's processing completes."""
        ...

    def set_deferred_completion_callback(
        self, callback: Optional[Callable[[Task, int], None]]
    ) -> None:
        """Register the callback invoked when a DEFERred task's outputs have
        been copied from its in-flight producer (arguments: the deferred task
        and the number of bytes copied)."""
        ...
