"""Task dependence graph (TDG).

The TDG is a DAG whose nodes are tasks and whose edges are the dependences
produced by :class:`repro.runtime.dependences.DependenceTracker`.  The graph
tracks, per task, the number of unsatisfied predecessors; when it drops to
zero the task becomes *ready* and is handed to the scheduler.

The class is thread-safe: the threaded executor completes tasks from worker
threads while the master may still be adding tasks.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from typing import Callable, Iterable, Optional

from repro.common.exceptions import RuntimeStateError
from repro.runtime.dependences import DependenceTracker
from repro.runtime.task import Task, TaskState

__all__ = ["TaskDependenceGraph"]


class TaskDependenceGraph:
    """A dynamic task dependence graph with ready-task notification."""

    def __init__(self, on_ready: Optional[Callable[[Task], None]] = None) -> None:
        self._lock = threading.RLock()
        self._tracker = DependenceTracker()
        self._successors: dict[int, list[Task]] = defaultdict(list)
        self._predecessor_count: dict[int, int] = {}
        self._tasks: dict[int, Task] = {}
        self._edge_count = 0
        self._finished_count = 0
        self._next_id = 0
        self._on_ready = on_ready
        self._all_done = threading.Condition(self._lock)

    # -- construction ---------------------------------------------------------
    def add_task(self, task: Task) -> Task:
        """Register a task, compute its dependences and maybe mark it ready."""
        with self._lock:
            if task.task_id < 0:
                task.task_id = self._next_id
            self._next_id = max(self._next_id, task.task_id + 1)
            task.creation_index = task.task_id
            task.label = f"{task.task_type.name}#{task.task_id}"
            predecessors = self._tracker.dependences_for(task)
            pending = 0
            for pred in predecessors:
                if not pred.state.is_terminal:
                    self._successors[pred.task_id].append(task)
                    pending += 1
                    self._edge_count += 1
            self._predecessor_count[task.task_id] = pending
            self._tasks[task.task_id] = task
            if pending == 0:
                self._mark_ready(task)
        return task

    def _mark_ready(self, task: Task) -> None:
        task.state = TaskState.READY
        if self._on_ready is not None:
            self._on_ready(task)

    # -- completion -----------------------------------------------------------
    def complete_task(self, task: Task, state: TaskState = TaskState.FINISHED) -> list[Task]:
        """Mark a task terminal and return the newly released (ready) tasks."""
        with self._lock:
            if task.task_id not in self._tasks:
                raise RuntimeStateError(f"unknown task {task.label}")
            if task.state.is_terminal:
                raise RuntimeStateError(f"task {task.label} completed twice")
            # Commit the write accesses: bump every output region's version
            # *before* releasing successors, so any consumer key computed
            # after this point sees the post-write version.  (Memoized tasks
            # wrote through copy_from, executed tasks through the task body;
            # either way the regions' bytes may have changed.)
            for access in task.accesses:
                if access.writes:
                    access.region.bump_version()
            task.state = state
            self._finished_count += 1
            released: list[Task] = []
            for succ in self._successors.pop(task.task_id, []):
                self._predecessor_count[succ.task_id] -= 1
                if self._predecessor_count[succ.task_id] == 0:
                    self._mark_ready(succ)
                    released.append(succ)
            if self.all_finished:
                self._all_done.notify_all()
            return released

    # -- queries --------------------------------------------------------------
    @property
    def task_count(self) -> int:
        with self._lock:
            return len(self._tasks)

    @property
    def edge_count(self) -> int:
        with self._lock:
            return self._edge_count

    @property
    def finished_count(self) -> int:
        with self._lock:
            return self._finished_count

    @property
    def all_finished(self) -> bool:
        return self._finished_count == len(self._tasks)

    def tasks(self) -> list[Task]:
        with self._lock:
            return list(self._tasks.values())

    def pending_tasks(self) -> list[Task]:
        """Tasks not yet terminal."""
        with self._lock:
            return [t for t in self._tasks.values() if not t.state.is_terminal]

    def wait_all_finished(self, timeout: Optional[float] = None) -> bool:
        """Block until every registered task is terminal."""
        with self._all_done:
            return self._all_done.wait_for(lambda: self.all_finished, timeout=timeout)

    # -- analysis -------------------------------------------------------------
    def critical_path_length(self, cost: Callable[[Task], float] | None = None) -> float:
        """Length of the longest path through the DAG.

        ``cost`` maps each task to its weight (default: the simulated cost
        model).  Used by tests and by the harness to sanity-check speedup
        upper bounds.
        """
        cost = cost or (lambda t: t.simulated_cost())
        with self._lock:
            order = sorted(self._tasks.values(), key=lambda t: t.task_id)
            longest: dict[int, float] = {}
            incoming: dict[int, list[Task]] = defaultdict(list)
            for task_id, succs in self._successors.items():
                for succ in succs:
                    incoming[succ.task_id].append(self._tasks[task_id])
            best = 0.0
            for task in order:
                base = max(
                    (longest.get(p.task_id, 0.0) for p in incoming[task.task_id]),
                    default=0.0,
                )
                longest[task.task_id] = base + cost(task)
                best = max(best, longest[task.task_id])
            return best

    def to_networkx(self):  # pragma: no cover - optional dependency
        """Export the TDG as a ``networkx.DiGraph`` (optional dependency)."""
        import networkx as nx

        graph = nx.DiGraph()
        with self._lock:
            for task in self._tasks.values():
                graph.add_node(task.task_id, label=task.label, type=task.task_type.name)
            for task_id, succs in self._successors.items():
                for succ in succs:
                    graph.add_edge(task_id, succ.task_id)
        return graph

    def iter_edges(self) -> Iterable[tuple[int, int]]:
        with self._lock:
            for task_id, succs in self._successors.items():
                for succ in succs:
                    yield (task_id, succ.task_id)
