"""Task dependence graph (TDG).

The TDG is a DAG whose nodes are tasks and whose edges are the dependences
produced by :class:`repro.runtime.dependences.DependenceTracker`.  The graph
tracks, per task, the number of unsatisfied predecessors; when it drops to
zero the task becomes *ready* and is handed to the scheduler.

The class is thread-safe: the threaded executor completes tasks from worker
threads while the master may still be adding tasks.

Submission fast path (see PERFORMANCE.md "Submission fast path"): per-task
bookkeeping lives in dense arrays keyed by task id — predecessor counts in a
flat ``list[int]``, successor slabs in a ``list[list[Task] | None]`` — so
the hot path performs list indexing instead of dict hashing, and edges are
kept for the lifetime of the graph (completion no longer erases them, which
also makes :meth:`critical_path_length` timing-independent).
:meth:`add_tasks` submits a whole batch under one lock acquisition and hands
every immediately-ready task to the executor in a single batched
notification (``on_ready_batch``), which is how ``Session.submit_batch``
amortises per-task overhead.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Optional, Sequence

from repro.common.exceptions import RuntimeStateError
from repro.runtime.dependences import DependenceTracker
from repro.runtime.task import Task, TaskState

__all__ = ["TaskDependenceGraph"]


class TaskDependenceGraph:
    """A dynamic task dependence graph with ready-task notification.

    ``on_ready`` is invoked (under the graph lock) for every task whose
    dependences become satisfied; ``on_ready_batch``, when provided, replaces
    per-task callbacks for batched submissions (one call per
    :meth:`add_tasks` / :meth:`complete_task` release set), letting the
    executor push the whole set into its ready queue under one queue lock.

    ``on_complete`` is invoked *outside* the graph lock for every terminal
    transition — ``FINISHED``/``MEMOIZED`` completions, ``FAILED`` tasks,
    ``CANCELLED`` successors of a quarantined failure, and tasks born
    cancelled because they depend on already-quarantined work.  It runs on
    whichever thread drove the transition (a worker thread on the threaded
    backend, the drain thread elsewhere) and is the serving layer's per-task
    accounting/admission seam; because it runs lock-free it may safely
    submit follow-up tasks back into the same graph.  Callbacks must not
    raise — an exception propagates into the completing executor.
    """

    def __init__(
        self,
        on_ready: Optional[Callable[[Task], None]] = None,
        on_ready_batch: Optional[Callable[[Sequence[Task]], None]] = None,
        on_complete: Optional[Callable[[Task], None]] = None,
    ) -> None:
        self._lock = threading.RLock()
        self._tracker = DependenceTracker()
        # Dense, task-id-indexed bookkeeping (grown on demand):
        self._successors: list[Optional[list[Task]]] = []
        self._predecessor_count: list[int] = []
        self._predecessor_ids: list[Optional[list[int]]] = []
        self._tasks: dict[int, Task] = {}
        self._edge_count = 0
        self._finished_count = 0
        self._next_id = 0
        self._on_ready = on_ready
        self._on_ready_batch = on_ready_batch
        self._on_complete = on_complete
        self._all_done = threading.Condition(self._lock)

    #: Largest accepted gap between an explicit task id and the next dense
    #: id.  The dense arrays allocate O(max id) slots; a sparse external id
    #: (a hash, say) would silently OOM where the pre-PR-4 dict was O(tasks).
    MAX_ID_GAP = 1 << 20

    # -- construction ---------------------------------------------------------
    def _grow(self, task_id: int) -> None:
        """Extend the dense arrays to cover ``task_id`` (geometric growth)."""
        needed = task_id + 1 - len(self._predecessor_count)
        if needed > 0:
            # Amortise: growing one slot per sequentially-ided task would
            # make every add pay a list-concat.
            needed = max(needed, len(self._predecessor_count) // 2 + 8)
            self._predecessor_count.extend([0] * needed)
            self._successors.extend([None] * needed)
            self._predecessor_ids.extend([None] * needed)

    def _add_locked(self, task: Task) -> bool:
        """Register one task under the lock; True if immediately ready."""
        task_id = task.task_id
        if task_id < 0:
            task_id = task.task_id = self._next_id
            self._next_id = task_id + 1
        elif task_id >= self._next_id:
            if task_id - self._next_id > self.MAX_ID_GAP:
                raise RuntimeStateError(
                    f"task_id {task_id} is more than {self.MAX_ID_GAP} beyond "
                    f"the next dense id {self._next_id}; the graph's dense "
                    f"bookkeeping does not support sparse external ids — let "
                    f"the runtime assign ids (task_id=-1)"
                )
            self._next_id = task_id + 1
        task.creation_index = task_id
        task._label = None  # recomputed lazily from the assigned id
        if task_id >= len(self._predecessor_count):
            self._grow(task_id)
        predecessors = self._tracker.dependences_for(task)
        pending = 0
        doomed = False
        if predecessors:
            pred_ids: Optional[list[int]] = None
            successors = self._successors
            finished, memoized = TaskState.FINISHED, TaskState.MEMOIZED
            failed, cancelled = TaskState.FAILED, TaskState.CANCELLED
            for pred in predecessors:
                state = pred.state
                if state is failed or state is cancelled:
                    # A dependence on quarantined work can never be satisfied:
                    # the new task is born cancelled (no edge, no release).
                    doomed = True
                elif state is not finished and state is not memoized:
                    slab = successors[pred.task_id]
                    if slab is None:
                        slab = successors[pred.task_id] = []
                    slab.append(task)
                    if pred_ids is None:
                        pred_ids = self._predecessor_ids[task_id] = []
                    pred_ids.append(pred.task_id)
                    pending += 1
            self._edge_count += pending
            self._predecessor_count[task_id] = pending
        self._tasks[task_id] = task
        if doomed:
            task.state = TaskState.CANCELLED
            self._finished_count += 1
            if self.all_finished:
                self._all_done.notify_all()
            return False
        return pending == 0

    def add_task(self, task: Task) -> Task:
        """Register a task, compute its dependences and maybe mark it ready."""
        with self._lock:
            if self._add_locked(task):
                self._mark_ready(task)
        if task.state is TaskState.CANCELLED and self._on_complete is not None:
            # Born cancelled (doomed dependence): terminal at submission.
            self._on_complete(task)
        return task

    def add_tasks(self, tasks: Iterable[Task]) -> list[Task]:
        """Register a batch of tasks under one lock acquisition.

        Dependences are computed in iteration order (identical to submitting
        one by one); every task that is immediately ready is handed to the
        executor in a single batched notification.  Returns the tasks, as a
        list.
        """
        submitted: list[Task] = []
        ready: list[Task] = []
        try:
            with self._lock:
                try:
                    for task in tasks:
                        if self._add_locked(task):
                            ready.append(task)
                        submitted.append(task)
                finally:
                    # A task that raised mid-batch (bad id, failing iterator)
                    # is not registered, but everything before it already
                    # counts toward all_finished — notify those on every path
                    # or a later drain would hang waiting for tasks no
                    # scheduler has.
                    if ready:
                        self._mark_ready_batch(ready)
        finally:
            if self._on_complete is not None:
                for task in submitted:
                    if task.state is TaskState.CANCELLED:
                        self._on_complete(task)
        return submitted

    def _mark_ready(self, task: Task) -> None:
        task.state = TaskState.READY
        if self._on_ready is not None:
            self._on_ready(task)

    def _mark_ready_batch(self, tasks: list[Task]) -> None:
        for task in tasks:
            task.state = TaskState.READY
        if self._on_ready_batch is not None:
            self._on_ready_batch(tasks)
        elif self._on_ready is not None:
            for task in tasks:
                self._on_ready(task)

    # -- completion -----------------------------------------------------------
    def complete_task(self, task: Task, state: TaskState = TaskState.FINISHED) -> list[Task]:
        """Mark a task terminal and return the newly released (ready) tasks."""
        with self._lock:
            if task.task_id not in self._tasks:
                raise RuntimeStateError(f"unknown task {task.label}")
            if task.state.is_terminal:
                raise RuntimeStateError(f"task {task.label} completed twice")
            # Commit the write accesses: bump every output region's version
            # *before* releasing successors, so any consumer key computed
            # after this point sees the post-write version.  (Memoized tasks
            # wrote through copy_from, executed tasks through the task body;
            # either way the regions' bytes may have changed.)
            for access in task.accesses:
                if access.writes:
                    access.region.bump_version()
            task.state = state
            self._finished_count += 1
            released: list[Task] = []
            successors = self._successors[task.task_id]
            if successors:
                counts = self._predecessor_count
                for succ in successors:
                    counts[succ.task_id] -= 1
                    # A successor already terminal was CANCELLED by a failed
                    # sibling predecessor (fail_task): keep its count honest
                    # but never hand it to the scheduler.
                    if counts[succ.task_id] == 0 and not succ.state.is_terminal:
                        released.append(succ)
                if released:
                    self._mark_ready_batch(released)
            if self.all_finished:
                self._all_done.notify_all()
        if self._on_complete is not None:
            self._on_complete(task)
        return released

    def fail_task(self, task: Task) -> list[Task]:
        """Quarantine: mark ``task`` FAILED and cancel its dependent subgraph.

        The failed task and every transitive successor become terminal
        (``FAILED`` / ``CANCELLED``) without being released to the scheduler,
        so a drain completes with the independent tasks only.  Write versions
        are *not* bumped — a failed task's outputs carry no committed value.
        Returns the cancelled tasks (the failed task itself excluded).
        """
        with self._lock:
            if task.task_id not in self._tasks:
                raise RuntimeStateError(f"unknown task {task.label}")
            if task.state.is_terminal:
                raise RuntimeStateError(f"task {task.label} completed twice")
            task.state = TaskState.FAILED
            self._finished_count += 1
            cancelled: list[Task] = []
            stack = [task]
            while stack:
                successors = self._successors[stack.pop().task_id]
                if not successors:
                    continue
                for succ in successors:
                    if succ.state.is_terminal:
                        continue
                    succ.state = TaskState.CANCELLED
                    self._finished_count += 1
                    cancelled.append(succ)
                    stack.append(succ)
            if self.all_finished:
                self._all_done.notify_all()
        if self._on_complete is not None:
            self._on_complete(task)
            for succ in cancelled:
                self._on_complete(succ)
        return cancelled

    # -- queries --------------------------------------------------------------
    @property
    def task_count(self) -> int:
        with self._lock:
            return len(self._tasks)

    @property
    def edge_count(self) -> int:
        with self._lock:
            return self._edge_count

    @property
    def finished_count(self) -> int:
        with self._lock:
            return self._finished_count

    @property
    def all_finished(self) -> bool:
        return self._finished_count == len(self._tasks)

    def tasks(self) -> list[Task]:
        with self._lock:
            return list(self._tasks.values())

    def pending_tasks(self) -> list[Task]:
        """Tasks not yet terminal."""
        with self._lock:
            return [t for t in self._tasks.values() if not t.state.is_terminal]

    def wait_all_finished(self, timeout: Optional[float] = None) -> bool:
        """Block until every registered task is terminal."""
        with self._all_done:
            return self._all_done.wait_for(lambda: self.all_finished, timeout=timeout)

    # -- analysis -------------------------------------------------------------
    def critical_path_length(self, cost: Callable[[Task], float] | None = None) -> float:
        """Length of the longest path through the DAG.

        ``cost`` maps each task to its weight (default: the simulated cost
        model).  Predecessor adjacency is maintained incrementally at
        submission time (``_predecessor_ids``), so this no longer rebuilds
        an incoming-adjacency map from the successor lists on every call —
        and because edges are never erased on completion, the answer is the
        same before, during and after a drain.
        """
        cost = cost or (lambda t: t.simulated_cost())
        with self._lock:
            longest: dict[int, float] = {}
            pred_ids = self._predecessor_ids
            best = 0.0
            for task_id in sorted(self._tasks):
                task = self._tasks[task_id]
                preds = pred_ids[task_id] if task_id < len(pred_ids) else None
                base = 0.0
                if preds:
                    base = max(longest.get(p, 0.0) for p in preds)
                longest[task_id] = length = base + cost(task)
                if length > best:
                    best = length
            return best

    def to_networkx(self):  # pragma: no cover - optional dependency
        """Export the TDG as a ``networkx.DiGraph`` (optional dependency)."""
        import networkx as nx

        graph = nx.DiGraph()
        with self._lock:
            for task in self._tasks.values():
                graph.add_node(task.task_id, label=task.label, type=task.task_type.name)
            for task_id, task in self._tasks.items():
                slab = self._successors[task_id]
                if slab:
                    for succ in slab:
                        graph.add_edge(task_id, succ.task_id)
        return graph

    def iter_edges(self) -> Iterable[tuple[int, int]]:
        with self._lock:
            for task_id in self._tasks:
                slab = self._successors[task_id]
                if slab:
                    for succ in slab:
                        yield (task_id, succ.task_id)
