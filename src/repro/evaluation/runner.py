"""Experiment runner shared by every figure and table generator.

An :class:`ExperimentSpec` names a benchmark, a workload scale, an ATM
configuration (mode, sampling fraction, IKT on/off, THT geometry), the number
of simulated cores and the executor kind.  :func:`run_benchmark` executes it
and returns an :class:`ExperimentResult` with the simulated (or wall-clock)
time, the reuse statistics, the program correctness against a cached no-ATM
reference run, the ATM memory overhead and, optionally, the execution trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.apps import make_benchmark
from repro.apps.base import BenchmarkApp, WorkloadScale
from repro.atm.engine import ATMEngine
from repro.atm.policy import ATMMode, make_policy
from repro.common.config import ATMConfig, RuntimeConfig, SimulationConfig
from repro.common.exceptions import EvaluationError
from repro.runtime.api import TaskRuntime
from repro.runtime.executor import make_executor
from repro.runtime.trace import TraceRecorder

__all__ = [
    "ExperimentSpec",
    "ExperimentResult",
    "run_benchmark",
    "run_reference",
    "clear_reference_cache",
]


@dataclass(frozen=True)
class ExperimentSpec:
    """One benchmark execution under one ATM configuration."""

    benchmark: str
    scale: str = "small"
    mode: str = "none"              # none | static | dynamic | fixed_p
    p: Optional[float] = None        # required for fixed_p
    cores: int = 8
    use_ikt: bool = True
    tht_bucket_bits: int = 8
    tht_bucket_capacity: int = 128
    executor: str = "simulated"      # simulated | serial | threaded | process
    enable_tracing: bool = False
    seed: int = 2017

    def atm_enabled(self) -> bool:
        return self.mode != "none"


@dataclass
class ExperimentResult:
    """Measured outcome of one experiment."""

    spec: ExperimentSpec
    elapsed: float
    time_unit: str
    output: np.ndarray
    correctness: float
    relative_error: float
    tasks_completed: int
    tasks_executed: int
    tasks_memoized: int
    tasks_deferred: int
    reuse_percent: float
    memoized_type_reuse_percent: float
    chosen_p: Optional[float]
    atm_stats: dict = field(default_factory=dict)
    memory_overhead_percent: float = 0.0
    trace: Optional[TraceRecorder] = None
    baseline_elapsed: Optional[float] = None
    app: Optional[BenchmarkApp] = None

    @property
    def speedup(self) -> float:
        """Speedup vs the cached no-ATM baseline at the same core count."""
        if not self.baseline_elapsed or self.elapsed <= 0:
            return 1.0
        return self.baseline_elapsed / self.elapsed


# Reference (no-ATM) runs are cached per (benchmark, scale, cores, executor,
# seed) so figure generators do not repeat them for every configuration.
_REFERENCE_CACHE: dict[tuple, tuple[np.ndarray, float]] = {}


def clear_reference_cache() -> None:
    _REFERENCE_CACHE.clear()


def _make_executor(spec: ExperimentSpec, engine: Optional[ATMEngine]):
    if spec.executor not in ("simulated", "serial", "threaded", "process"):
        raise EvaluationError(f"unknown executor {spec.executor!r}")
    cores = 1 if spec.executor == "serial" else spec.cores
    runtime_config = RuntimeConfig(
        num_threads=cores,
        executor=spec.executor,
        enable_tracing=spec.enable_tracing,
    )
    sim_config = SimulationConfig() if spec.executor == "simulated" else None
    return make_executor(runtime_config, engine=engine, sim_config=sim_config)


def _make_engine(spec: ExperimentSpec) -> Optional[ATMEngine]:
    if not spec.atm_enabled():
        return None
    config = ATMConfig(
        tht_bucket_bits=spec.tht_bucket_bits,
        tht_bucket_capacity=spec.tht_bucket_capacity,
        use_ikt=spec.use_ikt,
    )
    policy = make_policy(ATMMode(spec.mode), config, p=spec.p)
    return ATMEngine(config=config, policy=policy, num_threads=spec.cores)


def run_reference(
    benchmark: str,
    scale: str = "small",
    cores: int = 8,
    executor: str = "simulated",
    seed: int = 2017,
) -> tuple[np.ndarray, float]:
    """Run (or fetch from cache) the no-ATM baseline for a configuration.

    Returns ``(reference_output, baseline_elapsed)``.
    """
    key = (benchmark, scale, cores, executor, seed)
    if key not in _REFERENCE_CACHE:
        spec = ExperimentSpec(
            benchmark=benchmark, scale=scale, mode="none", cores=cores,
            executor=executor, seed=seed,
        )
        result = _run(spec, reference=None)
        _REFERENCE_CACHE[key] = (result.output, result.elapsed)
    return _REFERENCE_CACHE[key]


def run_benchmark(spec: ExperimentSpec) -> ExperimentResult:
    """Run one experiment, resolving its baseline reference automatically."""
    reference = run_reference(
        spec.benchmark, spec.scale, spec.cores, spec.executor, spec.seed
    )
    return _run(spec, reference=reference)


def _run(
    spec: ExperimentSpec,
    reference: Optional[tuple[np.ndarray, float]],
) -> ExperimentResult:
    app = make_benchmark(spec.benchmark, scale=WorkloadScale.coerce(spec.scale), seed=spec.seed)
    engine = _make_engine(spec)
    executor = _make_executor(spec, engine)
    runtime = TaskRuntime(executor=executor)
    app.run(runtime)
    run_result = executor.result()
    output = app.output()

    if reference is None:
        correctness = 100.0
        relative_error = 0.0
        baseline_elapsed = None
    else:
        reference_output, baseline_elapsed = reference
        correctness = app.correctness(reference_output)
        relative_error = app.relative_error(reference_output)

    chosen_p: Optional[float] = None
    stats_snapshot: dict = {}
    memoized_type_reuse = 0.0
    memory_overhead = 0.0
    if engine is not None:
        stats_snapshot = engine.stats.snapshot()
        chosen_p = engine.policy.chosen_p(app.info.memoized_task_type)
        type_seen = (
            stats_snapshot["per_type"]
            .get(app.info.memoized_task_type, {})
            .get("seen", 0)
        )
        if type_seen:
            memoized_type_reuse = 100.0 * stats_snapshot["memoized_tasks"] / type_seen
        memory_overhead = engine.memory_overhead_percent(app.application_bytes())

    return ExperimentResult(
        spec=spec,
        elapsed=run_result.elapsed,
        time_unit=run_result.time_unit,
        output=output,
        correctness=correctness,
        relative_error=relative_error,
        tasks_completed=run_result.tasks_completed,
        tasks_executed=run_result.tasks_executed,
        tasks_memoized=run_result.tasks_memoized,
        tasks_deferred=run_result.tasks_deferred,
        reuse_percent=100.0 * run_result.reuse_fraction,
        memoized_type_reuse_percent=memoized_type_reuse,
        chosen_p=chosen_p,
        atm_stats=stats_snapshot,
        memory_overhead_percent=memory_overhead,
        trace=run_result.trace if spec.enable_tracing else None,
        baseline_elapsed=reference[1] if reference else None,
        app=app,
    )


def geometric_mean(values: list[float]) -> float:
    """Geometric mean used for the ``geomean`` column of Figures 3, 4 and 6."""
    arr = np.asarray([v for v in values if v > 0], dtype=np.float64)
    if arr.size == 0:
        return 0.0
    return float(np.exp(np.mean(np.log(arr))))
