"""Experiment runner shared by every figure and table generator.

An :class:`ExperimentSpec` names a benchmark, a workload scale, an ATM
configuration (mode, sampling fraction, IKT on/off, THT geometry), the number
of simulated cores and the executor kind.  :func:`run_benchmark` executes it
and returns an :class:`ExperimentResult` with the simulated (or wall-clock)
time, the reuse statistics, the program correctness against a cached no-ATM
reference run, the ATM memory overhead and, optionally, the execution trace.

The spec is a thin *view* over the Session API's unified config tree: it
adds the two experiment-only coordinates (``benchmark``, ``scale``) on top of
a :class:`~repro.session.ReproConfig`, and :meth:`ExperimentSpec.to_config`
is the bridge.  All execution goes through
:class:`~repro.session.Session` — the runner performs no engine/executor
wiring of its own.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.apps import make_benchmark
from repro.apps.base import BenchmarkApp, WorkloadScale
from repro.common.config import ATMConfig, RuntimeConfig, SimulationConfig
from repro.common.exceptions import ConfigurationError, EvaluationError
from repro.runtime.trace import TraceRecorder
from repro.session import ReproConfig, Session

__all__ = [
    "ExperimentSpec",
    "ExperimentResult",
    "run_benchmark",
    "run_reference",
    "clear_reference_cache",
]


@dataclass(frozen=True)
class ExperimentSpec:
    """One benchmark execution under one ATM configuration.

    A flat, hashable view over :class:`~repro.session.ReproConfig` plus the
    experiment coordinates (benchmark, scale); figure generators sweep these
    specs and :func:`run_benchmark` lowers each one to a Session run.
    """

    benchmark: str
    scale: str = "small"
    mode: str = "none"              # any registered policy name
    p: Optional[float] = None        # required for fixed_p
    cores: int = 8
    use_ikt: bool = True
    tht_bucket_bits: int = 8
    tht_bucket_capacity: int = 128
    executor: str = "simulated"      # any registered executor name
    enable_tracing: bool = False
    seed: int = 2017

    def atm_enabled(self) -> bool:
        return self.mode != "none"

    def to_config(self) -> ReproConfig:
        """Lower this spec to the unified Session config tree."""
        if self.mode == "fixed_p" and self.p is None:
            raise EvaluationError("fixed_p experiments require an explicit p")
        try:
            return ReproConfig(
                runtime=RuntimeConfig(
                    num_threads=self.cores,
                    executor=self.executor,
                    enable_tracing=self.enable_tracing,
                    seed=self.seed,
                ),
                atm=ATMConfig(
                    mode=self.mode,
                    p=self.p if self.p is not None else 1.0,
                    use_ikt=self.use_ikt,
                    tht_bucket_bits=self.tht_bucket_bits,
                    tht_bucket_capacity=self.tht_bucket_capacity,
                ),
                simulation=SimulationConfig(),
            )
        except ConfigurationError as exc:
            raise EvaluationError(f"invalid experiment spec: {exc}") from exc

    @classmethod
    def from_config(
        cls, config: ReproConfig, benchmark: str, scale: str = "small", **extra
    ) -> "ExperimentSpec":
        """Project a Session config tree back onto the flat spec view.

        Inverse of :meth:`to_config` up to ``p``-canonicalisation: the tree
        stores the effective sampling fraction, so ``p`` is reconstructed
        only for ``fixed_p`` specs (the other modes ignore it and keep the
        spec default ``None``).
        """
        return cls(
            benchmark=benchmark,
            scale=scale,
            mode=config.atm.mode,
            p=config.atm.p if config.atm.mode == "fixed_p" else None,
            cores=config.runtime.num_threads,
            use_ikt=config.atm.use_ikt,
            tht_bucket_bits=config.atm.tht_bucket_bits,
            tht_bucket_capacity=config.atm.tht_bucket_capacity,
            executor=config.runtime.executor,
            enable_tracing=config.runtime.enable_tracing,
            seed=config.runtime.seed,
            **extra,
        )


@dataclass
class ExperimentResult:
    """Measured outcome of one experiment."""

    spec: ExperimentSpec
    elapsed: float
    time_unit: str
    output: np.ndarray
    correctness: float
    relative_error: float
    tasks_completed: int
    tasks_executed: int
    tasks_memoized: int
    tasks_deferred: int
    reuse_percent: float
    memoized_type_reuse_percent: float
    chosen_p: Optional[float]
    atm_stats: dict = field(default_factory=dict)
    memory_overhead_percent: float = 0.0
    trace: Optional[TraceRecorder] = None
    baseline_elapsed: Optional[float] = None
    app: Optional[BenchmarkApp] = None

    @property
    def speedup(self) -> float:
        """Speedup vs the cached no-ATM baseline at the same core count."""
        if not self.baseline_elapsed or self.elapsed <= 0:
            return 1.0
        return self.baseline_elapsed / self.elapsed


# Reference (no-ATM) runs are cached per (benchmark, scale, cores, executor,
# seed) so figure generators do not repeat them for every configuration.
_REFERENCE_CACHE: dict[tuple, tuple[np.ndarray, float]] = {}


def clear_reference_cache() -> None:
    _REFERENCE_CACHE.clear()


def run_reference(
    benchmark: str,
    scale: str = "small",
    cores: int = 8,
    executor: str = "simulated",
    seed: int = 2017,
) -> tuple[np.ndarray, float]:
    """Run (or fetch from cache) the no-ATM baseline for a configuration.

    Returns ``(reference_output, baseline_elapsed)``.
    """
    key = (benchmark, scale, cores, executor, seed)
    if key not in _REFERENCE_CACHE:
        spec = ExperimentSpec(
            benchmark=benchmark, scale=scale, mode="none", cores=cores,
            executor=executor, seed=seed,
        )
        result = _run(spec, reference=None)
        _REFERENCE_CACHE[key] = (result.output, result.elapsed)
    return _REFERENCE_CACHE[key]


def run_benchmark(spec: ExperimentSpec) -> ExperimentResult:
    """Run one experiment, resolving its baseline reference automatically."""
    reference = run_reference(
        spec.benchmark, spec.scale, spec.cores, spec.executor, spec.seed
    )
    return _run(spec, reference=reference)


def _run(
    spec: ExperimentSpec,
    reference: Optional[tuple[np.ndarray, float]],
) -> ExperimentResult:
    app = make_benchmark(spec.benchmark, scale=WorkloadScale.coerce(spec.scale), seed=spec.seed)
    with Session(spec.to_config()) as session:
        app.run(session)
        run_result = session.result
    engine = session.engine
    output = app.output()

    if reference is None:
        correctness = 100.0
        relative_error = 0.0
        baseline_elapsed = None
    else:
        reference_output, baseline_elapsed = reference
        correctness = app.correctness(reference_output)
        relative_error = app.relative_error(reference_output)

    chosen_p: Optional[float] = None
    stats_snapshot: dict = {}
    memoized_type_reuse = 0.0
    memory_overhead = 0.0
    if engine is not None:
        stats_snapshot = engine.stats.snapshot()
        chosen_p = engine.policy.chosen_p(app.info.memoized_task_type)
        type_seen = (
            stats_snapshot["per_type"]
            .get(app.info.memoized_task_type, {})
            .get("seen", 0)
        )
        if type_seen:
            memoized_type_reuse = 100.0 * stats_snapshot["memoized_tasks"] / type_seen
        memory_overhead = engine.memory_overhead_percent(app.application_bytes())

    return ExperimentResult(
        spec=spec,
        elapsed=run_result.elapsed,
        time_unit=run_result.time_unit,
        output=output,
        correctness=correctness,
        relative_error=relative_error,
        tasks_completed=run_result.tasks_completed,
        tasks_executed=run_result.tasks_executed,
        tasks_memoized=run_result.tasks_memoized,
        tasks_deferred=run_result.tasks_deferred,
        reuse_percent=100.0 * run_result.reuse_fraction,
        memoized_type_reuse_percent=memoized_type_reuse,
        chosen_p=chosen_p,
        atm_stats=stats_snapshot,
        memory_overhead_percent=memory_overhead,
        trace=run_result.trace if spec.enable_tracing else None,
        baseline_elapsed=reference[1] if reference else None,
        app=app,
    )


def geometric_mean(values: list[float]) -> float:
    """Geometric mean used for the ``geomean`` column of Figures 3, 4 and 6."""
    arr = np.asarray([v for v in values if v > 0], dtype=np.float64)
    if arr.size == 0:
        return 0.0
    return float(np.exp(np.mean(np.log(arr))))
