"""Figure 6: speedup of Dynamic ATM and Oracle (95 %) over 1..8 cores.

For every core count the baseline is the no-ATM parallel execution *with the
same number of cores*, so the figure isolates the benefit of ATM from plain
parallel scaling, exactly as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.registry import BENCHMARK_NAMES
from repro.evaluation.oracle import find_oracle
from repro.evaluation.reporting import format_series
from repro.evaluation.runner import ExperimentSpec, geometric_mean, run_benchmark

__all__ = ["Fig6Series", "compute", "report"]

DEFAULT_CORE_COUNTS = (1, 2, 4, 8)


@dataclass
class Fig6Series:
    """Per-benchmark speedup series over core counts."""

    benchmark: str
    cores: list[int] = field(default_factory=list)
    dynamic_speedup: list[float] = field(default_factory=list)
    oracle_95_speedup: list[float] = field(default_factory=list)


def compute(
    scale: str = "small",
    core_counts: tuple[int, ...] = DEFAULT_CORE_COUNTS,
    benchmarks: tuple[str, ...] = BENCHMARK_NAMES,
    include_oracle: bool = True,
    seed: int = 2017,
) -> list[Fig6Series]:
    series: list[Fig6Series] = []
    for benchmark in benchmarks:
        entry = Fig6Series(benchmark=benchmark)
        for cores in core_counts:
            dynamic = run_benchmark(
                ExperimentSpec(
                    benchmark=benchmark, scale=scale, mode="dynamic", cores=cores, seed=seed
                )
            )
            entry.cores.append(cores)
            entry.dynamic_speedup.append(dynamic.speedup)
            if include_oracle:
                oracle = find_oracle(
                    benchmark, min_correctness=95.0, scale=scale, cores=cores, seed=seed
                )
                entry.oracle_95_speedup.append(oracle.speedup)
        series.append(entry)
    return series


def geomean_series(series: list[Fig6Series]) -> Fig6Series:
    """The ``Geomean`` panel of Figure 6."""
    if not series:
        return Fig6Series(benchmark="geomean")
    combined = Fig6Series(benchmark="geomean", cores=list(series[0].cores))
    for index in range(len(combined.cores)):
        combined.dynamic_speedup.append(
            geometric_mean([s.dynamic_speedup[index] for s in series])
        )
        if all(s.oracle_95_speedup for s in series):
            combined.oracle_95_speedup.append(
                geometric_mean([s.oracle_95_speedup[index] for s in series])
            )
    return combined


def report(series: list[Fig6Series]) -> str:
    lines = ["Figure 6: speedup vs number of cores (baseline: no-ATM at the same core count)", ""]
    for entry in series + [geomean_series(series)]:
        lines.append(
            format_series(
                f"{entry.benchmark} dynamic-ATM", entry.cores, entry.dynamic_speedup
            )
        )
        if entry.oracle_95_speedup:
            lines.append(
                format_series(
                    f"{entry.benchmark} oracle(95%)", entry.cores, entry.oracle_95_speedup
                )
            )
    return "\n".join(lines)
