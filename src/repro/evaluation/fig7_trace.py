"""Figure 7: Gauss-Seidel execution traces at 2 and 8 cores.

The paper shows two Paraver traces of a memoization-intensive phase of
Gauss-Seidel under the Oracle (95 %) configuration and observes that the
ATM-related states (hash-key computation and memoization copies) become on
average ~60 % slower at 8 cores than at 2 cores because they contend for
shared memory bandwidth.

This module runs the same experiment on the simulated executor with tracing
enabled and reports (a) the mean duration of each ATM state at both core
counts, (b) the slowdown ratio between them, and (c) a coarse ASCII rendering
of both traces.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.evaluation.oracle import find_oracle
from repro.evaluation.reporting import format_table
from repro.evaluation.runner import ExperimentSpec, run_benchmark
from repro.runtime.trace import CoreState, TraceRecorder, render_ascii_trace

__all__ = ["Fig7Result", "compute", "report"]


@dataclass
class Fig7Result:
    benchmark: str
    cores_small: int
    cores_large: int
    mean_hash_small: float
    mean_hash_large: float
    mean_memo_small: float
    mean_memo_large: float
    trace_small: TraceRecorder
    trace_large: TraceRecorder
    oracle_p: float

    @property
    def hash_slowdown(self) -> float:
        if self.mean_hash_small <= 0:
            return 1.0
        return self.mean_hash_large / self.mean_hash_small

    @property
    def memoization_slowdown(self) -> float:
        if self.mean_memo_small <= 0:
            return 1.0
        return self.mean_memo_large / self.mean_memo_small


def _traced_run(benchmark: str, scale: str, cores: int, p: float, seed: int):
    spec = ExperimentSpec(
        benchmark=benchmark, scale=scale, mode="fixed_p", p=p, cores=cores,
        enable_tracing=True, seed=seed,
    )
    return run_benchmark(spec)


def compute(
    benchmark: str = "gauss-seidel",
    scale: str = "small",
    cores_small: int = 2,
    cores_large: int = 8,
    seed: int = 2017,
) -> Fig7Result:
    oracle = find_oracle(benchmark, min_correctness=95.0, scale=scale, cores=cores_large, seed=seed)
    small = _traced_run(benchmark, scale, cores_small, oracle.chosen_p, seed)
    large = _traced_run(benchmark, scale, cores_large, oracle.chosen_p, seed)
    return Fig7Result(
        benchmark=benchmark,
        cores_small=cores_small,
        cores_large=cores_large,
        mean_hash_small=small.trace.mean_state_duration(CoreState.ATM_HASH),
        mean_hash_large=large.trace.mean_state_duration(CoreState.ATM_HASH),
        mean_memo_small=small.trace.mean_state_duration(CoreState.ATM_MEMOIZATION),
        mean_memo_large=large.trace.mean_state_duration(CoreState.ATM_MEMOIZATION),
        trace_small=small.trace,
        trace_large=large.trace,
        oracle_p=oracle.chosen_p,
    )


def report(result: Fig7Result) -> str:
    headers = ["state", f"{result.cores_small} cores (us)", f"{result.cores_large} cores (us)", "slowdown"]
    rows = [
        ["ATM:Hash-key computation", result.mean_hash_small, result.mean_hash_large, result.hash_slowdown],
        ["ATM:Task Memoization", result.mean_memo_small, result.mean_memo_large, result.memoization_slowdown],
    ]
    parts = [
        f"Figure 7: {result.benchmark} trace, Oracle(95%) p={100*result.oracle_p:.4g}%",
        format_table(headers, rows, float_format="{:.3f}"),
        "",
        f"--- {result.cores_small}-core trace ---",
        render_ascii_trace(result.trace_small),
        "",
        f"--- {result.cores_large}-core trace ---",
        render_ascii_trace(result.trace_large),
    ]
    return "\n".join(parts)
