"""Oracle configurations (paper Figures 3-6).

The paper's Oracle (100 %) and Oracle (95 %) bars are obtained with offline
profiling: for each benchmark, the smallest constant sampling fraction ``p``
that keeps the final program correctness at 100 % (respectively >= 95 %) is
selected, and the benchmark is re-run with that fixed ``p``.

:func:`find_oracle` reproduces this sweep over the paper's 16-step ladder
``p = 2^-15, 2^-14, ..., 1`` (Section III-D), returning the chosen ``p`` and
the corresponding run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.config import P_LADDER
from repro.evaluation.runner import ExperimentResult, ExperimentSpec, run_benchmark

__all__ = ["OracleResult", "find_oracle"]


@dataclass
class OracleResult:
    """Outcome of the offline oracle sweep for one benchmark."""

    benchmark: str
    min_correctness: float
    chosen_p: float
    result: ExperimentResult
    sweep: list[tuple[float, float]]  # (p, correctness) pairs explored

    @property
    def speedup(self) -> float:
        return self.result.speedup

    @property
    def correctness(self) -> float:
        return self.result.correctness


def find_oracle(
    benchmark: str,
    min_correctness: float = 95.0,
    scale: str = "small",
    cores: int = 8,
    use_ikt: bool = True,
    seed: int = 2017,
    ladder: Optional[tuple[float, ...]] = None,
) -> OracleResult:
    """Offline profiling sweep: smallest ``p`` meeting ``min_correctness``.

    The sweep walks the ladder from the smallest fraction upwards and stops
    at the first configuration whose final correctness meets the target,
    exactly like the paper's offline profiling; ``p = 1`` always satisfies
    100 % correctness, so the sweep always terminates with a valid result.
    """
    explored: list[tuple[float, float]] = []
    chosen: Optional[ExperimentResult] = None
    chosen_p = 1.0
    for p in ladder or P_LADDER:
        spec = ExperimentSpec(
            benchmark=benchmark,
            scale=scale,
            mode="fixed_p",
            p=p,
            cores=cores,
            use_ikt=use_ikt,
            seed=seed,
        )
        result = run_benchmark(spec)
        explored.append((p, result.correctness))
        if result.correctness >= min_correctness:
            chosen = result
            chosen_p = p
            break
    if chosen is None:  # pragma: no cover - p=1.0 always reaches 100 %
        chosen_p = 1.0
        chosen = run_benchmark(
            ExperimentSpec(
                benchmark=benchmark, scale=scale, mode="fixed_p", p=1.0,
                cores=cores, use_ikt=use_ikt, seed=seed,
            )
        )
    return OracleResult(
        benchmark=benchmark,
        min_correctness=min_correctness,
        chosen_p=chosen_p,
        result=chosen,
        sweep=explored,
    )
