"""Figure 4: final program correctness of Static ATM, Dynamic ATM and the
Oracle (95 %) configuration.

Static ATM must always reach 100 % (exact memoization); Dynamic ATM loses at
most a few percent on the approximation-friendly benchmarks (the paper
reports 1.2 % for Kmeans and 3.2 % for Swaptions, 0.7 % on average).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.registry import BENCHMARK_NAMES, PAPER_PARAMETERS
from repro.evaluation.oracle import find_oracle
from repro.evaluation.reporting import format_table
from repro.evaluation.runner import ExperimentSpec, geometric_mean, run_benchmark

__all__ = ["Fig4Row", "compute", "report"]


@dataclass
class Fig4Row:
    benchmark: str
    static_correctness: float
    dynamic_correctness: float
    oracle_95_correctness: float
    paper_static: float | None = None
    paper_dynamic: float | None = None


def compute(
    scale: str = "small",
    cores: int = 8,
    benchmarks: tuple[str, ...] = BENCHMARK_NAMES,
    include_oracle: bool = True,
    seed: int = 2017,
) -> list[Fig4Row]:
    rows: list[Fig4Row] = []
    for benchmark in benchmarks:
        static = run_benchmark(
            ExperimentSpec(benchmark=benchmark, scale=scale, mode="static", cores=cores, seed=seed)
        )
        dynamic = run_benchmark(
            ExperimentSpec(benchmark=benchmark, scale=scale, mode="dynamic", cores=cores, seed=seed)
        )
        oracle_correctness = 0.0
        if include_oracle:
            oracle_correctness = find_oracle(
                benchmark, min_correctness=95.0, scale=scale, cores=cores, seed=seed
            ).correctness
        paper = PAPER_PARAMETERS.get(benchmark)
        rows.append(
            Fig4Row(
                benchmark=benchmark,
                static_correctness=static.correctness,
                dynamic_correctness=dynamic.correctness,
                oracle_95_correctness=oracle_correctness,
                paper_static=paper.static_correctness if paper else None,
                paper_dynamic=paper.dynamic_correctness if paper else None,
            )
        )
    return rows


def report(rows: list[Fig4Row]) -> str:
    headers = [
        "benchmark", "static ATM", "dynamic ATM", "oracle(95%)",
        "paper static", "paper dynamic",
    ]
    table_rows = [
        [r.benchmark, r.static_correctness, r.dynamic_correctness,
         r.oracle_95_correctness or None, r.paper_static, r.paper_dynamic]
        for r in rows
    ]
    table_rows.append([
        "geomean",
        geometric_mean([r.static_correctness for r in rows]),
        geometric_mean([r.dynamic_correctness for r in rows]),
        geometric_mean([r.oracle_95_correctness for r in rows]) or None,
        100.0,
        99.3,
    ])
    return format_table(headers, table_rows, title="Figure 4: final correctness (%)")
