"""Evaluation harness: regenerates every table and figure of the paper.

Each ``figN_*`` / ``tables`` module exposes a ``compute(...)`` function that
returns plain data structures and a ``report(...)`` function that renders
them as text, so the same code backs the CLI (``python -m repro.evaluation``),
the pytest-benchmark targets under ``benchmarks/`` and EXPERIMENTS.md.
"""

from repro.evaluation.runner import (
    ExperimentResult,
    ExperimentSpec,
    clear_reference_cache,
    run_benchmark,
    run_reference,
)
from repro.evaluation.oracle import OracleResult, find_oracle

__all__ = [
    "ExperimentResult",
    "ExperimentSpec",
    "run_benchmark",
    "run_reference",
    "clear_reference_cache",
    "OracleResult",
    "find_oracle",
]
