"""Tables I, II and III of the paper.

* **Table I** — benchmark descriptions: program input, task-input bytes of
  the memoized task type, element types, memoized task type, number of tasks
  and the output on which correctness is measured.  The measured columns are
  produced by instantiating and running each benchmark at the requested
  scale; the paper's values (native inputs) are shown alongside.
* **Table II** — Dynamic-ATM parameters (``L_training`` and ``tau_max``).
* **Table III** — ATM memory overhead relative to the application footprint,
  measured after a Dynamic-ATM run with the paper's THT geometry.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import make_benchmark
from repro.apps.registry import BENCHMARK_NAMES, PAPER_PARAMETERS
from repro.evaluation.reporting import format_table
from repro.evaluation.runner import ExperimentSpec, run_benchmark

__all__ = [
    "Table1Row", "Table2Row", "Table3Row",
    "compute_table1", "compute_table2", "compute_table3",
    "report_table1", "report_table2", "report_table3",
]


@dataclass
class Table1Row:
    benchmark: str
    program_input: str
    task_input_bytes: int
    paper_task_input_bytes: int
    task_input_types: str
    memoized_task_type: str
    number_of_tasks: int
    paper_number_of_tasks: int
    correctness_measured_on: str


@dataclass
class Table2Row:
    benchmark: str
    l_training: int
    tau_max_percent: float
    paper_l_training: int
    paper_tau_max_percent: float


@dataclass
class Table3Row:
    benchmark: str
    memory_overhead_percent: float
    paper_memory_overhead_percent: float


def compute_table1(scale: str = "small", seed: int = 2017) -> list[Table1Row]:
    rows: list[Table1Row] = []
    for benchmark in BENCHMARK_NAMES:
        result = run_benchmark(
            ExperimentSpec(benchmark=benchmark, scale=scale, mode="static", cores=8, seed=seed)
        )
        app = result.app
        info = app.info
        # Task input bytes of the memoized task type: read from one task-type
        # instance of the built graph via the engine statistics (hashed bytes
        # per eligible task at p = 1).
        per_type = result.atm_stats.get("per_type", {}).get(info.memoized_task_type, {})
        seen = max(1, per_type.get("seen", 1))
        task_input_bytes = result.atm_stats.get("hashed_bytes", 0) // seen
        input_types = _input_type_names(app)
        rows.append(
            Table1Row(
                benchmark=benchmark,
                program_input=f"{scale} scale ({info.paper_program_input} in the paper)",
                task_input_bytes=int(task_input_bytes),
                paper_task_input_bytes=info.paper_task_input_bytes,
                task_input_types=input_types,
                memoized_task_type=info.memoized_task_type,
                number_of_tasks=result.tasks_completed,
                paper_number_of_tasks=info.paper_number_of_tasks,
                correctness_measured_on=info.correctness_measured_on,
            )
        )
    return rows


def _input_type_names(app) -> str:
    """Element types of the benchmark's footprint arrays (Table I column)."""
    names: list[str] = []
    for array in app._footprint_arrays():
        name = str(array.dtype)
        if name not in names:
            names.append(name)
    return ", ".join(names)


def compute_table2() -> list[Table2Row]:
    rows: list[Table2Row] = []
    for benchmark in BENCHMARK_NAMES:
        app = make_benchmark(benchmark, scale="tiny")
        paper = PAPER_PARAMETERS[benchmark]
        rows.append(
            Table2Row(
                benchmark=benchmark,
                l_training=app.info.l_training,
                tau_max_percent=100.0 * app.info.tau_max,
                paper_l_training=paper.l_training,
                paper_tau_max_percent=paper.tau_max_percent,
            )
        )
    return rows


def compute_table3(scale: str = "small", seed: int = 2017) -> list[Table3Row]:
    rows: list[Table3Row] = []
    for benchmark in BENCHMARK_NAMES:
        result = run_benchmark(
            ExperimentSpec(benchmark=benchmark, scale=scale, mode="dynamic", cores=8, seed=seed)
        )
        rows.append(
            Table3Row(
                benchmark=benchmark,
                memory_overhead_percent=result.memory_overhead_percent,
                paper_memory_overhead_percent=PAPER_PARAMETERS[benchmark].memory_overhead_percent,
            )
        )
    return rows


def report_table1(rows: list[Table1Row]) -> str:
    headers = [
        "benchmark", "program input", "task input bytes", "(paper)",
        "input types", "memoized task type", "#tasks", "(paper)", "correctness on",
    ]
    table = [
        [r.benchmark, r.program_input, r.task_input_bytes, r.paper_task_input_bytes,
         r.task_input_types, r.memoized_task_type, r.number_of_tasks,
         r.paper_number_of_tasks, r.correctness_measured_on]
        for r in rows
    ]
    return format_table(headers, table, title="Table I: benchmark description")


def report_table2(rows: list[Table2Row]) -> str:
    headers = ["benchmark", "L_training", "tau_max (%)", "paper L_training", "paper tau_max (%)"]
    table = [
        [r.benchmark, r.l_training, r.tau_max_percent, r.paper_l_training, r.paper_tau_max_percent]
        for r in rows
    ]
    return format_table(headers, table, title="Table II: Dynamic ATM parameters")


def report_table3(rows: list[Table3Row]) -> str:
    headers = ["benchmark", "ATM memory overhead (%)", "paper (%)"]
    table = [
        [r.benchmark, r.memory_overhead_percent, r.paper_memory_overhead_percent]
        for r in rows
    ]
    return format_table(headers, table, title="Table III: ATM memory overhead vs application footprint")
