"""ATM sizing ablation (paper Section IV-B).

The paper reports two sizing results:

* the number of THT buckets matters for lock contention: ``N = 8`` (256
  buckets) improves performance by ~46 % over a single bucket (``N = 0``),
  and larger values do not help further;
* most applications saturate their reuse at a bucket capacity of ``M = 16``,
  but Kmeans needs ``M = 128`` (which the paper then uses everywhere).

This module sweeps both parameters for a chosen benchmark and reports the
speedup and reuse of each configuration.  Lock contention itself is a
real-multithreading effect, so the bucket-bits sweep can also be run on the
threaded executor; the default uses the simulated executor, where the effect
shows up through the THT-probe serialisation statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.evaluation.reporting import format_table
from repro.evaluation.runner import ExperimentSpec, run_benchmark

__all__ = ["SizingPoint", "compute_bucket_bits_sweep", "compute_capacity_sweep", "report"]


@dataclass
class SizingPoint:
    parameter: str
    value: int
    speedup: float
    reuse_percent: float
    memory_overhead_percent: float


def compute_bucket_bits_sweep(
    benchmark: str = "blackscholes",
    scale: str = "small",
    cores: int = 8,
    bits_values: tuple[int, ...] = (0, 2, 4, 8, 10),
    seed: int = 2017,
) -> list[SizingPoint]:
    points = []
    for bits in bits_values:
        result = run_benchmark(
            ExperimentSpec(
                benchmark=benchmark, scale=scale, mode="dynamic", cores=cores,
                tht_bucket_bits=bits, seed=seed,
            )
        )
        points.append(
            SizingPoint(
                parameter="tht_bucket_bits",
                value=bits,
                speedup=result.speedup,
                reuse_percent=result.memoized_type_reuse_percent,
                memory_overhead_percent=result.memory_overhead_percent,
            )
        )
    return points


def compute_capacity_sweep(
    benchmark: str = "kmeans",
    scale: str = "small",
    cores: int = 8,
    capacities: tuple[int, ...] = (4, 16, 64, 128),
    seed: int = 2017,
) -> list[SizingPoint]:
    points = []
    for capacity in capacities:
        result = run_benchmark(
            ExperimentSpec(
                benchmark=benchmark, scale=scale, mode="dynamic", cores=cores,
                tht_bucket_capacity=capacity, seed=seed,
            )
        )
        points.append(
            SizingPoint(
                parameter="tht_bucket_capacity",
                value=capacity,
                speedup=result.speedup,
                reuse_percent=result.memoized_type_reuse_percent,
                memory_overhead_percent=result.memory_overhead_percent,
            )
        )
    return points


def report(points: list[SizingPoint], benchmark: str) -> str:
    headers = ["parameter", "value", "speedup", "reuse (%)", "memory overhead (%)"]
    rows = [
        [p.parameter, p.value, p.speedup, p.reuse_percent, p.memory_overhead_percent]
        for p in points
    ]
    return format_table(headers, rows, title=f"ATM sizing ablation ({benchmark})")
