"""Command-line interface for regenerating the paper's tables and figures.

Usage::

    python -m repro.evaluation fig3 --scale small
    python -m repro.evaluation fig5 --benchmarks blackscholes kmeans
    python -m repro.evaluation all --scale tiny
    repro-atm table3

Every subcommand prints its result to stdout (and optionally writes it to a
file with ``--output``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from repro.apps.registry import BENCHMARK_NAMES
from repro.evaluation import (
    ablation_sizing,
    fig3_speedup,
    fig4_correctness,
    fig5_sensitivity,
    fig6_scalability,
    fig7_trace,
    fig8_ready_tasks,
    fig9_redundancy,
    tables,
)

__all__ = ["main", "build_parser"]


def _common_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", default="small", choices=["tiny", "small", "paper"],
                        help="workload scale (default: small)")
    parser.add_argument("--cores", type=int, default=8, help="simulated core count")
    parser.add_argument("--seed", type=int, default=2017, help="workload seed")
    parser.add_argument("--benchmarks", nargs="*", default=None,
                        help="subset of benchmarks (default: all six)")
    parser.add_argument("--output", default=None, help="also write the report to this file")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-atm",
        description="Reproduce the evaluation of 'ATM: Approximate Task Memoization in the Runtime System'",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, help_text in [
        ("fig3", "speedup of Static/Dynamic ATM and Oracles"),
        ("fig4", "final correctness"),
        ("fig5", "correctness vs sampling fraction p"),
        ("fig6", "scalability over 1..8 cores"),
        ("fig7", "Gauss-Seidel execution trace (2 vs 8 cores)"),
        ("fig8", "Blackscholes ready-task pressure with/without ATM"),
        ("fig9", "cumulative generated reuse"),
        ("table1", "benchmark description"),
        ("table2", "Dynamic ATM parameters"),
        ("table3", "ATM memory overhead"),
        ("ablation", "THT sizing ablation"),
        ("all", "run everything"),
    ]:
        command = sub.add_parser(name, help=help_text)
        _common_args(command)
    return parser


def _benchmarks(args: argparse.Namespace) -> tuple[str, ...]:
    if args.benchmarks:
        return tuple(args.benchmarks)
    return BENCHMARK_NAMES


def _run_command(args: argparse.Namespace) -> str:
    name = args.command
    benchmarks = _benchmarks(args)
    if name == "fig3":
        return fig3_speedup.report(
            fig3_speedup.compute(scale=args.scale, cores=args.cores,
                                 benchmarks=benchmarks, seed=args.seed)
        )
    if name == "fig4":
        return fig4_correctness.report(
            fig4_correctness.compute(scale=args.scale, cores=args.cores,
                                     benchmarks=benchmarks, seed=args.seed)
        )
    if name == "fig5":
        return fig5_sensitivity.report(
            fig5_sensitivity.compute(scale=args.scale, cores=args.cores,
                                     benchmarks=benchmarks, seed=args.seed)
        )
    if name == "fig6":
        return fig6_scalability.report(
            fig6_scalability.compute(scale=args.scale, benchmarks=benchmarks, seed=args.seed)
        )
    if name == "fig7":
        return fig7_trace.report(
            fig7_trace.compute(scale=args.scale, seed=args.seed)
        )
    if name == "fig8":
        return fig8_ready_tasks.report(
            fig8_ready_tasks.compute(scale=args.scale, cores=args.cores, seed=args.seed)
        )
    if name == "fig9":
        return fig9_redundancy.report(
            fig9_redundancy.compute(scale=args.scale, cores=args.cores,
                                    benchmarks=benchmarks, seed=args.seed)
        )
    if name == "table1":
        return tables.report_table1(tables.compute_table1(scale=args.scale, seed=args.seed))
    if name == "table2":
        return tables.report_table2(tables.compute_table2())
    if name == "table3":
        return tables.report_table3(tables.compute_table3(scale=args.scale, seed=args.seed))
    if name == "ablation":
        bits = ablation_sizing.report(
            ablation_sizing.compute_bucket_bits_sweep(scale=args.scale, cores=args.cores, seed=args.seed),
            benchmark="blackscholes",
        )
        capacity = ablation_sizing.report(
            ablation_sizing.compute_capacity_sweep(scale=args.scale, cores=args.cores, seed=args.seed),
            benchmark="kmeans",
        )
        return bits + "\n\n" + capacity
    if name == "all":
        sections: list[str] = []
        for sub_name in ("table1", "table2", "table3", "fig3", "fig4", "fig5",
                         "fig6", "fig7", "fig8", "fig9", "ablation"):
            sub_args = argparse.Namespace(**vars(args))
            sub_args.command = sub_name
            sections.append(f"==== {sub_name} ====")
            sections.append(_run_command(sub_args))
            sections.append("")
        return "\n".join(sections)
    raise SystemExit(f"unknown command {name!r}")


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    report = _run_command(args)
    print(report)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
