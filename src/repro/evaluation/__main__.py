"""Allow ``python -m repro.evaluation <figN|tableN|all>``."""

import sys

from repro.evaluation.cli import main

if __name__ == "__main__":
    sys.exit(main())
