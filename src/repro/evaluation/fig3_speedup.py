"""Figure 3: speedup of Static/Dynamic ATM (THT and THT+IKT) and the Oracles.

For every benchmark the paper reports six bars (log scale):

* Static ATM with the THT only,
* Dynamic ATM with the THT only,
* Static ATM with THT + IKT,
* Dynamic ATM with THT + IKT,
* Oracle (100 %) — smallest offline ``p`` with 100 % final correctness,
* Oracle (95 %) — smallest offline ``p`` with >= 95 % final correctness,

plus the geometric mean across benchmarks.  Speedups are measured against the
no-ATM baseline at the same core count (Eq. 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.registry import BENCHMARK_NAMES, PAPER_PARAMETERS
from repro.evaluation.oracle import find_oracle
from repro.evaluation.reporting import format_table
from repro.evaluation.runner import ExperimentSpec, geometric_mean, run_benchmark

__all__ = ["Fig3Row", "compute", "report"]

CONFIGURATIONS = (
    ("static_tht", "static", False),
    ("dynamic_tht", "dynamic", False),
    ("static_tht_ikt", "static", True),
    ("dynamic_tht_ikt", "dynamic", True),
)


@dataclass
class Fig3Row:
    """Speedups of one benchmark under every Figure-3 configuration."""

    benchmark: str
    static_tht: float = 0.0
    dynamic_tht: float = 0.0
    static_tht_ikt: float = 0.0
    dynamic_tht_ikt: float = 0.0
    oracle_100: float = 0.0
    oracle_95: float = 0.0
    paper_static: float | None = None
    paper_dynamic: float | None = None
    extra: dict = field(default_factory=dict)


def compute(
    scale: str = "small",
    cores: int = 8,
    benchmarks: tuple[str, ...] = BENCHMARK_NAMES,
    include_oracles: bool = True,
    seed: int = 2017,
) -> list[Fig3Row]:
    """Run every Figure-3 configuration and return one row per benchmark."""
    rows: list[Fig3Row] = []
    for benchmark in benchmarks:
        row = Fig3Row(benchmark=benchmark)
        paper = PAPER_PARAMETERS.get(benchmark)
        if paper is not None:
            row.paper_static = paper.static_atm_speedup
            row.paper_dynamic = paper.dynamic_atm_speedup
        for attr, mode, use_ikt in CONFIGURATIONS:
            result = run_benchmark(
                ExperimentSpec(
                    benchmark=benchmark, scale=scale, mode=mode, cores=cores,
                    use_ikt=use_ikt, seed=seed,
                )
            )
            setattr(row, attr, result.speedup)
        if include_oracles:
            row.oracle_100 = find_oracle(
                benchmark, min_correctness=100.0, scale=scale, cores=cores, seed=seed
            ).speedup
            row.oracle_95 = find_oracle(
                benchmark, min_correctness=95.0, scale=scale, cores=cores, seed=seed
            ).speedup
        rows.append(row)
    return rows


def report(rows: list[Fig3Row]) -> str:
    """Render the Figure-3 table, including the geometric-mean row."""
    headers = [
        "benchmark", "static(THT)", "dynamic(THT)", "static(THT+IKT)",
        "dynamic(THT+IKT)", "oracle(100%)", "oracle(95%)",
        "paper static", "paper dynamic",
    ]
    table_rows = []
    for row in rows:
        table_rows.append([
            row.benchmark, row.static_tht, row.dynamic_tht, row.static_tht_ikt,
            row.dynamic_tht_ikt, row.oracle_100 or None, row.oracle_95 or None,
            row.paper_static, row.paper_dynamic,
        ])
    geomean_row = [
        "geomean",
        geometric_mean([r.static_tht for r in rows]),
        geometric_mean([r.dynamic_tht for r in rows]),
        geometric_mean([r.static_tht_ikt for r in rows]),
        geometric_mean([r.dynamic_tht_ikt for r in rows]),
        geometric_mean([r.oracle_100 for r in rows]) or None,
        geometric_mean([r.oracle_95 for r in rows]) or None,
        1.4,
        2.5,
    ]
    table_rows.append(geomean_row)
    return format_table(headers, table_rows, title="Figure 3: ATM speedup over the no-ATM baseline (8 cores)")
