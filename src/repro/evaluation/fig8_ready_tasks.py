"""Figure 8: Blackscholes traces and ready-task counts with and without ATM.

The paper compares the execution of Blackscholes with Dynamic ATM against the
baseline and shows that, with ATM, worker threads memoize tasks faster than
the master thread can create them: the ready queue drains and stays close to
empty (Figures 8a/8b), whereas without ATM tasks pile up after each creation
burst (Figures 8c/8d).  This is the task-creation-throughput limitation
discussed in Section V-C.

This module reproduces the experiment with the simulated executor and reports
the mean and maximum ready-queue depth for both runs, plus ASCII traces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.evaluation.reporting import format_table
from repro.evaluation.runner import ExperimentSpec, run_benchmark
from repro.runtime.trace import TraceRecorder, render_ascii_trace

__all__ = ["Fig8Result", "compute", "report"]


@dataclass
class Fig8Result:
    benchmark: str
    cores: int
    with_atm_mean_ready: float
    with_atm_max_ready: int
    without_atm_mean_ready: float
    without_atm_max_ready: int
    with_atm_elapsed: float
    without_atm_elapsed: float
    trace_with: TraceRecorder
    trace_without: TraceRecorder

    @property
    def speedup(self) -> float:
        if self.with_atm_elapsed <= 0:
            return 1.0
        return self.without_atm_elapsed / self.with_atm_elapsed


def _mean_ready(trace: TraceRecorder) -> float:
    series = trace.ready_depth_series()
    if not series:
        return 0.0
    return float(np.mean([depth for _, depth in series]))


def compute(
    benchmark: str = "blackscholes",
    scale: str = "small",
    cores: int = 8,
    seed: int = 2017,
) -> Fig8Result:
    with_atm = run_benchmark(
        ExperimentSpec(
            benchmark=benchmark, scale=scale, mode="dynamic", cores=cores,
            enable_tracing=True, seed=seed,
        )
    )
    without_atm = run_benchmark(
        ExperimentSpec(
            benchmark=benchmark, scale=scale, mode="none", cores=cores,
            enable_tracing=True, seed=seed,
        )
    )
    return Fig8Result(
        benchmark=benchmark,
        cores=cores,
        with_atm_mean_ready=_mean_ready(with_atm.trace),
        with_atm_max_ready=with_atm.trace.max_ready_depth(),
        without_atm_mean_ready=_mean_ready(without_atm.trace),
        without_atm_max_ready=without_atm.trace.max_ready_depth(),
        with_atm_elapsed=with_atm.elapsed,
        without_atm_elapsed=without_atm.elapsed,
        trace_with=with_atm.trace,
        trace_without=without_atm.trace,
    )


def report(result: Fig8Result) -> str:
    headers = ["configuration", "mean ready tasks", "max ready tasks", "elapsed (us)"]
    rows = [
        ["with dynamic ATM", result.with_atm_mean_ready, result.with_atm_max_ready, result.with_atm_elapsed],
        ["without ATM", result.without_atm_mean_ready, result.without_atm_max_ready, result.without_atm_elapsed],
    ]
    parts = [
        f"Figure 8: {result.benchmark} ready-task pressure with/without ATM "
        f"(speedup {result.speedup:.2f}x)",
        format_table(headers, rows, float_format="{:.1f}"),
        "",
        "--- with dynamic ATM ---",
        render_ascii_trace(result.trace_with),
        "",
        "--- without ATM ---",
        render_ascii_trace(result.trace_without),
    ]
    return "\n".join(parts)
