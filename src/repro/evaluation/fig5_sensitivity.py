"""Figure 5: program correctness vs the (fixed) percentage of selected inputs.

The paper sweeps a constant sampling fraction ``p`` over the 16-step ladder
``2^-15 ... 1`` and plots the final correctness of every benchmark, together
with a star marking the ``p`` chosen automatically by Dynamic ATM.  The
right-most point (``p = 1``) corresponds to Static ATM and is always 100 %
correct; correctness degrades as ``p`` shrinks, at a benchmark-specific
point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.apps.registry import BENCHMARK_NAMES
from repro.common.config import P_LADDER
from repro.evaluation.reporting import format_series, format_table
from repro.evaluation.runner import ExperimentSpec, run_benchmark

__all__ = ["Fig5Curve", "compute", "report"]


@dataclass
class Fig5Curve:
    """Correctness-vs-p curve of one benchmark plus the Dynamic-ATM choice."""

    benchmark: str
    p_values: list[float] = field(default_factory=list)
    correctness: list[float] = field(default_factory=list)
    dynamic_chosen_p: Optional[float] = None
    dynamic_correctness: Optional[float] = None

    def correctness_at(self, p: float) -> float:
        for candidate, value in zip(self.p_values, self.correctness):
            if abs(candidate - p) < 1e-12:
                return value
        raise KeyError(f"p={p} not in sweep")


def compute(
    scale: str = "small",
    cores: int = 8,
    benchmarks: tuple[str, ...] = BENCHMARK_NAMES,
    ladder: tuple[float, ...] = P_LADDER,
    seed: int = 2017,
) -> list[Fig5Curve]:
    curves: list[Fig5Curve] = []
    for benchmark in benchmarks:
        curve = Fig5Curve(benchmark=benchmark)
        for p in ladder:
            result = run_benchmark(
                ExperimentSpec(
                    benchmark=benchmark, scale=scale, mode="fixed_p", p=p,
                    cores=cores, seed=seed,
                )
            )
            curve.p_values.append(p)
            curve.correctness.append(result.correctness)
        dynamic = run_benchmark(
            ExperimentSpec(benchmark=benchmark, scale=scale, mode="dynamic", cores=cores, seed=seed)
        )
        curve.dynamic_chosen_p = dynamic.chosen_p
        curve.dynamic_correctness = dynamic.correctness
        curves.append(curve)
    return curves


def report(curves: list[Fig5Curve]) -> str:
    lines = ["Figure 5: correctness (%) vs fixed sampling fraction p", ""]
    for curve in curves:
        lines.append(
            format_series(
                curve.benchmark,
                [100.0 * p for p in curve.p_values],
                curve.correctness,
            )
        )
    lines.append("")
    headers = ["benchmark", "dynamic-ATM chosen p (%)", "dynamic correctness (%)"]
    rows = [
        [
            curve.benchmark,
            (100.0 * curve.dynamic_chosen_p) if curve.dynamic_chosen_p else None,
            curve.dynamic_correctness,
        ]
        for curve in curves
    ]
    lines.append(format_table(headers, rows, float_format="{:.4g}"))
    return "\n".join(lines)
