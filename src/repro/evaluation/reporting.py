"""Plain-text table/series rendering shared by the CLI and EXPERIMENTS.md."""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_series", "format_kv"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
    float_format: str = "{:.2f}",
) -> str:
    """Render a list of rows as an aligned ASCII table."""
    rendered_rows: list[list[str]] = []
    for row in rows:
        rendered: list[str] = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            elif cell is None:
                rendered.append("-")
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)
    widths = [len(str(h)) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    name: str, xs: Sequence[float], ys: Sequence[float], precision: int = 3
) -> str:
    """Render an (x, y) series as one compact line per point."""
    points = ", ".join(
        f"({x:.{precision}g}, {y:.{precision}g})" for x, y in zip(xs, ys)
    )
    return f"{name}: {points}"


def format_kv(pairs: dict, title: str | None = None) -> str:
    """Render a dictionary of scalar results."""
    lines = [title] if title else []
    width = max((len(str(k)) for k in pairs), default=0)
    for key, value in pairs.items():
        if isinstance(value, float):
            lines.append(f"{str(key).ljust(width)} : {value:.3f}")
        else:
            lines.append(f"{str(key).ljust(width)} : {value}")
    return "\n".join(lines)
